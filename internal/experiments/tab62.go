package experiments

import (
	"fmt"
	"strings"

	psbox "psbox"
	"psbox/internal/sim"
)

// Tab62Row is one domain's overhead measurements (§6.2).
type Tab62Row struct {
	Domain string

	// LatencyBase/LatencyBoxed are the relevant access-latency metric
	// without/with the victim sandboxed: CPU wakeup latency, accelerator
	// dispatch latency, WiFi queueing latency.
	LatencyBase  sim.Duration
	LatencyBoxed sim.Duration
	LatencyDelta sim.Duration

	// TotalLossPct is the loss in combined hardware throughput caused by
	// the sandbox (lost sharing opportunities).
	TotalLossPct float64
}

// Tab62Result is the §6.2 cost table.
type Tab62Result struct {
	Rows []Tab62Row

	// ShootdownIPI is the per-shootdown inter-processor-interrupt latency
	// added to CPU scheduling (the "tens of µs" figure).
	ShootdownIPI sim.Duration
}

// Tab62 measures latency increases and total throughput loss per domain.
func Tab62(seed uint64) Tab62Result {
	out := Tab62Result{}

	// CPU: calib3d×3 saturating; latency metric = mean wakeup latency of a
	// periodic probe app; throughput = total kb.
	cpuRun := func(boxed bool) (sim.Duration, float64) {
		sys := psbox.NewAM57(seed)
		apps := []*psbox.App{
			install(sys, "calib3d", true),
			install(sys, "calib3d", true),
			install(sys, "calib3d", true),
		}
		probe := sys.Kernel.NewApp("probe")
		probe.Spawn("p", 0, psbox.Loop(
			psbox.Compute{Cycles: 2e5},
			psbox.Sleep{D: 10 * psbox.Millisecond},
		))
		if boxed {
			sys.Sandbox.MustCreate(apps[0], psbox.HWCPU).Enter()
		}
		sys.Run(3 * psbox.Second)
		var total float64
		for _, a := range apps {
			total += a.Counter("kb")
		}
		return sys.Kernel.Scheduler().MeanWakeupLatency(), total
	}
	latB, thrB := cpuRun(false)
	latX, thrX := cpuRun(true)
	out.Rows = append(out.Rows, Tab62Row{
		Domain: "cpu", LatencyBase: latB, LatencyBoxed: latX,
		LatencyDelta: latX - latB, TotalLossPct: -pct(thrX, thrB),
	})
	out.ShootdownIPI = 15 * sim.Microsecond

	// GPU: browser (victim) + magic; dispatch latency of the victim;
	// throughput = total commands.
	gpuRun := func(boxed bool) (sim.Duration, float64) {
		sys := psbox.NewAM57(seed)
		victim := install(sys, "browser", false)
		other := install(sys, "magic", false)
		if boxed {
			sys.Sandbox.MustCreate(victim, psbox.HWGPU).Enter()
		}
		sys.Run(3 * psbox.Second)
		drv := sys.Kernel.Accel("gpu")
		total := float64(drv.Completed(victim.ID) + drv.Completed(other.ID))
		return drv.MeanDispatchLatency(victim.ID), total
	}
	latB, thrB = gpuRun(false)
	latX, thrX = gpuRun(true)
	out.Rows = append(out.Rows, Tab62Row{
		Domain: "gpu", LatencyBase: latB, LatencyBoxed: latX,
		LatencyDelta: latX - latB, TotalLossPct: -pct(thrX, thrB),
	})

	// DSP: dgemm (victim) + sgemm; long commands make drains long.
	dspRun := func(boxed bool) (sim.Duration, float64) {
		sys := psbox.NewAM57(seed)
		victim := install(sys, "dgemm", false)
		other := install(sys, "sgemm", false)
		if boxed {
			sys.Sandbox.MustCreate(victim, psbox.HWDSP).Enter()
		}
		sys.Run(5 * psbox.Second)
		drv := sys.Kernel.Accel("dsp")
		total := drv.WorkDone(victim.ID) + drv.WorkDone(other.ID)
		return drv.MeanDispatchLatency(victim.ID), total
	}
	latB, thrB = dspRun(false)
	latX, thrX = dspRun(true)
	out.Rows = append(out.Rows, Tab62Row{
		Domain: "dsp", LatencyBase: latB, LatencyBoxed: latX,
		LatencyDelta: latX - latB, TotalLossPct: -pct(thrX, thrB),
	})

	// WiFi: browserw (victim) + scp; queueing latency of the victim's
	// packets; throughput = total bytes.
	wifiRun := func(boxed bool) (sim.Duration, float64) {
		sys := psbox.NewBeagleBone(seed)
		victim := install(sys, "browserw", false)
		other := install(sys, "scp", false)
		if boxed {
			sys.Sandbox.MustCreate(victim, psbox.HWWiFi).Enter()
		}
		sys.Run(4 * psbox.Second)
		nd := sys.Kernel.Net()
		total := float64(nd.SentBytes(victim.ID) + nd.SentBytes(other.ID))
		return nd.MeanQueueingLatency(victim.ID), total
	}
	latB, thrB = wifiRun(false)
	latX, thrX = wifiRun(true)
	out.Rows = append(out.Rows, Tab62Row{
		Domain: "wifi", LatencyBase: latB, LatencyBoxed: latX,
		LatencyDelta: latX - latB, TotalLossPct: -pct(thrX, thrB),
	})

	return out
}

func (r Tab62Result) String() string {
	var b strings.Builder
	b.WriteString(header("§6.2 — performance impact of psbox"))
	fmt.Fprintf(&b, "CPU task-shootdown IPI latency: %v per shootdown\n\n", r.ShootdownIPI)
	fmt.Fprintf(&b, "%-6s %14s %14s %14s %16s\n", "scope", "latency w/o", "latency w/", "Δ latency", "total thr. loss")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s %14v %14v %14v %15.1f%%\n",
			row.Domain, row.LatencyBase, row.LatencyBoxed, row.LatencyDelta, row.TotalLossPct)
	}
	b.WriteString("\n→ latency grows where drains are long (DSP, WiFi); total throughput loss stays single-digit\n")
	return b.String()
}
