package experiments

import (
	"math"
	"testing"
)

func TestMeteringShape(t *testing.T) {
	r := Metering(1)
	if r.TrainMAPEPct > 10 {
		t.Fatalf("model should track its training workload: %.1f%%", r.TrainMAPEPct)
	}
	if r.TestMAPEPct < r.TrainMAPEPct {
		t.Fatalf("out-of-distribution error %.1f%% below training %.1f%%",
			r.TestMAPEPct, r.TrainMAPEPct)
	}
	if r.TrainR2 < 0.5 {
		t.Fatalf("R² = %v", r.TrainR2)
	}
	_ = r.String()
}

func TestExtDaemonShape(t *testing.T) {
	r := ExtDaemon(1)
	// Blind through the naive daemon: observation ≈ idle.
	if d := (r.NaiveMJ - r.IdleOnlyMJ) / r.IdleOnlyMJ; d > 0.02 || d < -0.02 {
		t.Fatalf("naive observation %v should equal idle %v", r.NaiveMJ, r.IdleOnlyMJ)
	}
	// Functional through the aware daemon: close to direct submission.
	if r.AwareMJ <= r.IdleOnlyMJ*1.02 {
		t.Fatalf("aware observation %v barely above idle", r.AwareMJ)
	}
	if r.AwareVsDirectPct > 15 || r.AwareVsDirectPct < -15 {
		t.Fatalf("aware daemon deviates %.1f%% from direct submission", r.AwareVsDirectPct)
	}
	_ = r.String()
}

func TestAltGangShape(t *testing.T) {
	r := AltGang(1)
	// Work conservation: with a mostly-idle sandbox, the co-runner does
	// better under loans than under a fixed reservation.
	if r.OtherLoansKBs <= r.OtherGangKBs {
		t.Fatalf("loans should conserve work: co-runner %v (loans) vs %v (gang)",
			r.OtherLoansKBs, r.OtherGangKBs)
	}
	// Predictability: gang windows are (much) more regular.
	if r.GangJitterCV >= r.LoanJitterCV {
		t.Fatalf("gang jitter %v should be below loan jitter %v",
			r.GangJitterCV, r.LoanJitterCV)
	}
	// Both mechanisms keep the sandboxed app progressing.
	if r.BoxedLoansKBs <= 0 || r.BoxedGangKBs <= 0 {
		t.Fatal("boxed app stalled")
	}
	_ = r.String()
}

func TestExtraRegistry(t *testing.T) {
	ids := []string{"abl-loans", "abl-statevirt", "abl-drain", "abl-rate", "ext7", "lim-cell", "metering", "alt-gang", "ext-daemon"}
	extra := Extra()
	if len(extra) != len(ids) {
		t.Fatalf("extra registry has %d entries", len(extra))
	}
	for i, id := range ids {
		if extra[i].ID != id {
			t.Fatalf("extra[%d] = %s want %s", i, extra[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Fatalf("Lookup(%s) failed", id)
		}
	}
}

func TestExt7Shape(t *testing.T) {
	r := Ext7(1)
	if len(r.Scopes) != 3 {
		t.Fatalf("scopes = %v", r.Scopes)
	}
	for i, s := range r.Scopes {
		if math.Abs(r.DevPct[i]) > 2 {
			t.Errorf("%s deviated %.1f%% under co-run", s, r.DevPct[i])
		}
		if r.AloneMJ[i] <= 0 {
			t.Errorf("%s observed nothing", s)
		}
	}
	// The co-runner must dominate the display and DRAM rails, proving the
	// insulation is doing work.
	for i, s := range r.Scopes {
		if s == "gps" {
			continue
		}
		if r.RailCoRunMJ[i] < 2*r.CoRunMJ[i] {
			t.Errorf("%s rail %.1f not dominated by the co-runner (box saw %.1f)",
				s, r.RailCoRunMJ[i], r.CoRunMJ[i])
		}
	}
	_ = r.String()
}

func TestLimCellularShape(t *testing.T) {
	r := LimCellular(1)
	// The limitation: the victim's energy is materially entangled …
	if math.Abs(r.DevPct) < 8 {
		t.Fatalf("cellular entanglement only %.1f%%", r.DevPct)
	}
	// … and the mechanism is the RRC machine: cold promotion ≈ 600 ms,
	// warm radio ≈ instant.
	if r.ColdFirstByteMs < 400 {
		t.Fatalf("cold first byte %.0f ms — promotion missing", r.ColdFirstByteMs)
	}
	if r.WarmFirstByteMs > r.ColdFirstByteMs/10 {
		t.Fatalf("warm first byte %.0f ms — co-runner's DCH not ridden", r.WarmFirstByteMs)
	}
	_ = r.String()
}
