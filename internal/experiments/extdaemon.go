package experiments

import (
	"fmt"
	"strings"

	psbox "psbox"
	"psbox/internal/daemon"
	"psbox/internal/sim"
)

// ExtDaemonResult demonstrates the §7 "Userspace OS daemon" case: a
// client's GPU sandbox is blind when a naive render server multiplexes its
// requests, and works as if the client submitted directly once the daemon
// respects psbox boundaries.
type ExtDaemonResult struct {
	IdleOnlyMJ float64 // pure GPU idle over the window: the blind reading
	NaiveMJ    float64 // box observation through the naive daemon
	AwareMJ    float64 // box observation through the psbox-aware daemon
	DirectMJ   float64 // reference: the client submits to the GPU itself

	AwareVsDirectPct float64
}

// ExtDaemon measures a boxed client's GPU observation in all three
// plumbing configurations.
func ExtDaemon(seed uint64) ExtDaemonResult {
	span := 2 * sim.Second
	throughDaemon := func(aware bool) float64 {
		sys := psbox.NewAM57(seed)
		srv := daemon.NewRenderServer(sys.Kernel, "gpu", 0, aware)
		a := sys.Kernel.NewApp("clientA")
		a.Spawn("render", 0, srv.Client(a, "frameA", 3000, 0.6, 20*sim.Millisecond))
		b := sys.Kernel.NewApp("clientB")
		b.Spawn("render", 1, srv.Client(b, "frameB", 9000, 0.8, 16*sim.Millisecond))
		box := sys.Sandbox.MustCreate(a, psbox.HWGPU)
		box.Enter()
		sys.Run(span)
		return box.Read()
	}
	direct := func() float64 {
		sys := psbox.NewAM57(seed)
		a := sys.Kernel.NewApp("clientA")
		a.Spawn("render", 0, psbox.Loop(
			psbox.Compute{Cycles: 2e5},
			psbox.SubmitAccel{Dev: "gpu", Kind: "frameA", Work: 3000, DynW: 0.6},
			psbox.Sleep{D: 20 * sim.Millisecond},
		))
		b := sys.Kernel.NewApp("clientB")
		b.Spawn("render", 1, psbox.Loop(
			psbox.Compute{Cycles: 2e5},
			psbox.SubmitAccel{Dev: "gpu", Kind: "frameB", Work: 9000, DynW: 0.8},
			psbox.Sleep{D: 16 * sim.Millisecond},
		))
		box := sys.Sandbox.MustCreate(a, psbox.HWGPU)
		box.Enter()
		sys.Run(span)
		return box.Read()
	}
	sysIdle := psbox.NewAM57(seed)
	r := ExtDaemonResult{
		IdleOnlyMJ: mj(sysIdle.Kernel.Accel("gpu").Device().IdlePower() * span.Seconds()),
		NaiveMJ:    mj(throughDaemon(false)),
		AwareMJ:    mj(throughDaemon(true)),
		DirectMJ:   mj(direct()),
	}
	r.AwareVsDirectPct = pct(r.AwareMJ, r.DirectMJ)
	return r
}

func (r ExtDaemonResult) String() string {
	var b strings.Builder
	b.WriteString(header("§7 — userspace daemon multiplexing vs psbox boundaries"))
	fmt.Fprintf(&b, "client's GPU sandbox observation over 2 s:\n")
	fmt.Fprintf(&b, "  through naive render server: %8.1f mJ  (pure idle would be %.1f — the box is blind)\n",
		r.NaiveMJ, r.IdleOnlyMJ)
	fmt.Fprintf(&b, "  through aware render server: %8.1f mJ\n", r.AwareMJ)
	fmt.Fprintf(&b, "  submitting directly:         %8.1f mJ  (aware daemon within %+.1f%%)\n",
		r.DirectMJ, r.AwareVsDirectPct)
	b.WriteString("→ user-level request multiplexers must tag work with the requesting client,\n")
	b.WriteString("  or every client's power collapses onto the daemon's identity\n")
	return b.String()
}
