package experiments

import "testing"

func TestAblLoans(t *testing.T) {
	r := AblLoans(1)
	// With repayment the sandbox pays and co-runners inherit the freed
	// share (their "loss" goes negative); without it the box free-rides.
	if r.CoRunnerLossWithPct >= r.CoRunnerLossWithoutPct {
		t.Fatalf("repayment should benefit co-runners: with %.1f%% vs without %.1f%%",
			r.CoRunnerLossWithPct, r.CoRunnerLossWithoutPct)
	}
	if r.BoxedLossWithoutPct >= r.BoxedLossWithPct {
		t.Fatalf("without repayment the box should pay less: %.1f%% vs %.1f%%",
			r.BoxedLossWithoutPct, r.BoxedLossWithPct)
	}
	_ = r.String()
}

func TestAblStateVirt(t *testing.T) {
	r := AblStateVirt(1)
	if r.LeakWithPct > 5 {
		t.Fatalf("virtualized leak %.1f%% too large", r.LeakWithPct)
	}
	if r.LeakWithoutPct < 2*r.LeakWithPct || r.LeakWithoutPct < 5 {
		t.Fatalf("unvirtualized leak %.1f%% should dwarf virtualized %.1f%%",
			r.LeakWithoutPct, r.LeakWithPct)
	}
	_ = r.String()
}

func TestAblDrainBilling(t *testing.T) {
	r := AblDrainBilling(1)
	// The conservative rule shifts cost onto the box relative to
	// idle-only billing.
	if r.OtherLossFullPct > r.OtherLossIdlePct+1 {
		t.Fatalf("full billing should not hurt co-runners more: %.1f%% vs %.1f%%",
			r.OtherLossFullPct, r.OtherLossIdlePct)
	}
	if r.BoxedLossFullPct+1 < r.BoxedLossIdlePct {
		t.Fatalf("full billing should charge the box at least as much: %.1f%% vs %.1f%%",
			r.BoxedLossFullPct, r.BoxedLossIdlePct)
	}
	_ = r.String()
}

func TestAblMeterRate(t *testing.T) {
	r := AblMeterRate(1)
	if len(r.DevPct) != 3 {
		t.Fatalf("sweep = %v", r.PeriodsUs)
	}
	// Entanglement persists at every rate: deviation stays material even
	// at the finest window.
	for i, d := range r.DevPct {
		if d > -2 && d < 2 {
			t.Fatalf("window %.0fµs: deviation %.1f%% vanished — entanglement should persist",
				r.PeriodsUs[i], d)
		}
	}
	_ = r.String()
}
