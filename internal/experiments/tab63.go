package experiments

import (
	"fmt"
	"strings"

	psbox "psbox"
)

// Tab63Result is the §6.3 extreme-contention robustness check: a
// render-loop browser sandboxes itself against the saturating triangle
// stressor. The sandboxed app bears the entire draining cost — its
// throughput collapses relative to its uncontended rate — while the
// stressor is barely perturbed by the sandbox appearing next to it.
type Tab63Result struct {
	BrowserSoloBoxed  float64 // boxed browser, no contention (work units/s)
	BrowserCoUnboxed  float64 // co-run with triangle, no sandbox
	BrowserCoBoxed    float64 // co-run with triangle, sandboxed
	TriangleCoUnboxed float64
	TriangleCoBoxed   float64

	BrowserDropFactor float64 // solo-boxed / co-boxed: the price the sandboxed app pays
	TriangleChangePct float64 // triangle, unboxed-co → boxed-co
}

// Tab63 measures browser and triangle throughput across the three
// configurations.
func Tab63(seed uint64) Tab63Result {
	run := func(boxed, withTriangle bool) (browser, triangle float64) {
		sys := psbox.NewAM57(seed)
		b := install(sys, "browser", true) // completion-paced render loop
		var tri *psbox.App
		if withTriangle {
			tri = install(sys, "triangle", true)
		}
		if boxed {
			sys.Sandbox.MustCreate(b, psbox.HWGPU).Enter()
		}
		sys.Run(500 * psbox.Millisecond) // warmup
		drv := sys.Kernel.Accel("gpu")
		b0 := drv.WorkDone(b.ID)
		t0 := 0.0
		if tri != nil {
			t0 = drv.WorkDone(tri.ID)
		}
		span := 4 * psbox.Second
		sys.Run(span)
		sec := span.Seconds()
		browser = (drv.WorkDone(b.ID) - b0) / sec
		if tri != nil {
			triangle = (drv.WorkDone(tri.ID) - t0) / sec
		}
		return browser, triangle
	}
	r := Tab63Result{}
	r.BrowserSoloBoxed, _ = run(true, false)
	r.BrowserCoUnboxed, r.TriangleCoUnboxed = run(false, true)
	r.BrowserCoBoxed, r.TriangleCoBoxed = run(true, true)
	if r.BrowserCoBoxed > 0 {
		r.BrowserDropFactor = r.BrowserSoloBoxed / r.BrowserCoBoxed
	}
	r.TriangleChangePct = pct(r.TriangleCoBoxed, r.TriangleCoUnboxed)
	return r
}

func (r Tab63Result) String() string {
	var b strings.Builder
	b.WriteString(header("§6.3 — robustness under extreme contention (browser in psbox vs triangle)"))
	fmt.Fprintf(&b, "browser solo (boxed, no contention): %10.0f GPU work units/s\n", r.BrowserSoloBoxed)
	fmt.Fprintf(&b, "browser co-run unboxed:              %10.0f\n", r.BrowserCoUnboxed)
	fmt.Fprintf(&b, "browser co-run boxed:                %10.0f  (%.1f× below its uncontended rate — excessive draining time)\n",
		r.BrowserCoBoxed, r.BrowserDropFactor)
	fmt.Fprintf(&b, "triangle, browser unboxed → boxed:   %10.0f → %10.0f  (%+.1f%%)\n",
		r.TriangleCoUnboxed, r.TriangleCoBoxed, r.TriangleChangePct)
	b.WriteString("→ the sandboxed app absorbs the entire cost of insulation; the stressor is barely perturbed\n")
	return b.String()
}
