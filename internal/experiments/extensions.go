package experiments

import (
	"fmt"

	"strings"

	psbox "psbox"
	"psbox/internal/hw/cellular"
	"psbox/internal/sim"
)

// Ext7Result demonstrates the §7 extension scopes on the mobile platform:
// per-scope sandbox observations stay invariant to a heavy co-runner.
type Ext7Result struct {
	Scopes      []string
	AloneMJ     []float64
	CoRunMJ     []float64
	DevPct      []float64
	RailCoRunMJ []float64 // the entangled whole-rail energy for contrast
}

// Ext7 runs a navigation-style app alone and against a display/memory
// heavy video app, boxed on the display, DRAM (with CPU) and GPS scopes.
func Ext7(seed uint64) Ext7Result {
	run := func(coRunner bool) (map[psbox.HW]float64, map[string]float64) {
		sys := psbox.NewMobile(seed)
		nav := sys.Kernel.NewApp("nav")
		nav.Spawn("ui", 0, psbox.Sequence(
			psbox.Compute{Cycles: 2e5},
			psbox.SetDisplayRegion{Pixels: 500000, Luminance: 0.5},
			psbox.AcquireGPS{},
			psbox.Sleep{D: 300 * sim.Second},
		))
		nav.Spawn("tiles", 1, psbox.Loop(
			psbox.Compute{Cycles: 2e6, MemGBs: 1.0},
			psbox.Sleep{D: 25 * sim.Millisecond},
		))
		if coRunner {
			video := sys.Kernel.NewApp("video")
			video.Spawn("play", 0, psbox.Loop(
				psbox.Compute{Cycles: 3e6, MemGBs: 3.5},
				psbox.Sleep{D: 8 * sim.Millisecond},
			))
			video.Spawn("draw", 1, psbox.Sequence(
				psbox.Compute{Cycles: 1e5},
				psbox.SetDisplayRegion{Pixels: 1000000, Luminance: 0.9},
				psbox.Sleep{D: 300 * sim.Second},
			))
		}
		box := sys.Sandbox.MustCreate(nav, psbox.HWCPU, psbox.HWDRAM, psbox.HWDisplay, psbox.HWGPS)
		box.Enter()
		sys.Run(40 * sim.Second)
		obs := map[psbox.HW]float64{}
		for _, h := range []psbox.HW{psbox.HWDisplay, psbox.HWDRAM, psbox.HWGPS} {
			obs[h] = box.ReadScope(h)
		}
		rails := map[string]float64{}
		for _, r := range []string{"display", "dram", "gps"} {
			rails[r] = sys.Meter.Energy(r, 0, sys.Now())
		}
		return obs, rails
	}
	alone, _ := run(false)
	co, rails := run(true)
	r := Ext7Result{}
	for _, h := range []psbox.HW{psbox.HWDisplay, psbox.HWDRAM, psbox.HWGPS} {
		r.Scopes = append(r.Scopes, string(h))
		r.AloneMJ = append(r.AloneMJ, mj(alone[h]))
		r.CoRunMJ = append(r.CoRunMJ, mj(co[h]))
		r.DevPct = append(r.DevPct, pct(co[h], alone[h]))
		r.RailCoRunMJ = append(r.RailCoRunMJ, mj(rails[string(h)]))
	}
	return r
}

func (r Ext7Result) String() string {
	var b strings.Builder
	b.WriteString(header("§7 extensions — sandbox scopes on display, DRAM, GPS"))
	fmt.Fprintf(&b, "%-9s %12s %12s %8s %14s\n", "scope", "alone (mJ)", "co-run (mJ)", "dev", "rail co-run")
	for i, s := range r.Scopes {
		fmt.Fprintf(&b, "%-9s %12.1f %12.1f %+7.1f%% %13.1f\n",
			s, r.AloneMJ[i], r.CoRunMJ[i], r.DevPct[i], r.RailCoRunMJ[i])
	}
	b.WriteString("→ observations invariant to the co-runner while the raw rails are dominated by it\n")
	return b.String()
}

// LimCellularResult demonstrates the §7(3) limitation: identical victim
// traffic yields materially different energy depending on co-runner
// activity, and the modem exposes no State/Restore to virtualize.
type LimCellularResult struct {
	AloneMJ         float64
	EntangledMJ     float64
	DevPct          float64
	ColdFirstByteMs float64 // promotion delay experienced from idle
	WarmFirstByteMs float64 // riding another app's DCH
}

// LimCellular drives the modem directly: a victim uploading periodically,
// with and without a chatty co-runner keeping the radio in DCH.
func LimCellular(seed uint64) LimCellularResult {
	cfg := cellular.DefaultConfig()
	victimEnergy := func(coRunner bool) (float64, float64) {
		eng := sim.NewEngine()
		m := cellular.MustNew(eng, cfg)
		if coRunner {
			var chat func(sim.Time)
			chat = func(sim.Time) {
				m.Send(2, 300)
				eng.After(3*sim.Second, chat)
			}
			chat(0)
		}
		var firstByte sim.Duration = -1
		var spans []struct{ a, b sim.Time }
		m.OnComplete(func(p *cellular.Packet) {
			if p.Owner != 1 {
				return
			}
			if firstByte < 0 {
				firstByte = p.Dispatched.Sub(p.Enqueued)
			}
			spans = append(spans, struct{ a, b sim.Time }{p.Enqueued, p.Completed})
		})
		// Let the co-runner (if any) warm the radio up first.
		eng.RunFor(10 * sim.Second)
		m.Send(1, 2000)
		eng.RunFor(25 * sim.Second)
		m.Send(1, 2000)
		eng.RunFor(25 * sim.Second)
		var e float64
		for _, s := range spans {
			// Cover the DCH tail plus part of the FACH span the upload
			// triggered.
			end := s.b.Add(cfg.DchTail + 6*sim.Second)
			if end > eng.Now() {
				end = eng.Now()
			}
			e += m.Rail().EnergyBetween(s.a, end)
		}
		return e, firstByte.Seconds() * 1000
	}
	alone, cold := victimEnergy(false)
	co, warm := victimEnergy(true)
	return LimCellularResult{
		AloneMJ:         mj(alone),
		EntangledMJ:     mj(co),
		DevPct:          pct(co, alone),
		ColdFirstByteMs: cold,
		WarmFirstByteMs: warm,
	}
}

func (r LimCellularResult) String() string {
	var b strings.Builder
	b.WriteString(header("§7(3) limitation — cellular RRC states are not virtualizable"))
	fmt.Fprintf(&b, "victim's marginal energy, alone:        %8.1f mJ (first byte after %.0f ms promotion)\n",
		r.AloneMJ, r.ColdFirstByteMs)
	fmt.Fprintf(&b, "victim's marginal energy, chatty co-run:%8.1f mJ (%+.1f%%; first byte after %.0f ms)\n",
		r.EntangledMJ, r.DevPct, r.WarmFirstByteMs)
	b.WriteString("→ the RRC machine (promotion delays, network-owned inactivity timers) entangles\n")
	b.WriteString("  apps' energy, and the OS cannot save/restore it: psbox needs hardware support here\n")
	return b.String()
}
