package experiments

import (
	"fmt"
	"strings"

	"psbox/internal/sidechannel"
	"psbox/internal/workload"
)

// Fig5Row is one benchmark-inventory entry.
type Fig5Row struct {
	Domain string
	Name   string
	Desc   string
}

// Fig5Result is the benchmark table.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5 enumerates the implemented workloads with their Fig. 5
// descriptions.
func Fig5() Fig5Result {
	var r Fig5Result
	for _, name := range workload.Names() {
		spec := workload.Catalog()[name](2, false)
		r.Rows = append(r.Rows, Fig5Row{Domain: spec.Domain, Name: name, Desc: spec.Desc})
	}
	return r
}

func (r Fig5Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 5 — benchmark apps"))
	for _, domain := range []string{"cpu", "gpu", "dsp", "wifi"} {
		for _, row := range r.Rows {
			if row.Domain != domain {
				continue
			}
			fmt.Fprintf(&b, "%-5s %-10s %s\n", strings.ToUpper(row.Domain), row.Name, row.Desc)
		}
	}
	return b.String()
}

// Sec25Result pairs the side-channel outcome under both observation
// regimes.
type Sec25Result struct {
	Unrestricted sidechannel.Result
	PSBox        sidechannel.Result
}

// Sec25 runs the §2.5 website-inference attack with and without psbox as
// the mandatory observation interface.
func Sec25(seed uint64) Sec25Result {
	open := sidechannel.DefaultConfig(sidechannel.ObserveUnrestricted)
	open.Seed = seed + 1234
	closed := open
	closed.Observe = sidechannel.ObservePSBox
	return Sec25Result{
		Unrestricted: sidechannel.Run(open),
		PSBox:        sidechannel.Run(closed),
	}
}

func (r Sec25Result) String() string {
	var b strings.Builder
	b.WriteString(header("§2.5 — GPU power side channel (website inference, DTW attacker)"))
	print := func(res sidechannel.Result) {
		fmt.Fprintf(&b, "%-13s success %3d/%3d = %5.1f%%  (random %.1f%%, advantage %.1f×, leakage %.2f of %.2f bits)\n",
			res.Observe.String()+":", res.Correct, res.Total, res.SuccessRate*100,
			res.RandomGuess*100, res.SuccessRate/res.RandomGuess,
			res.LeakageBits(), res.MaxLeakageBits())
	}
	print(r.Unrestricted)
	print(r.PSBox)
	b.WriteString("→ entangled observations identify the victim's website; psbox reduces the attacker to near-random\n")
	return b.String()
}
