package experiments

import (
	"strings"
	"testing"
)

// TestEveryExperimentRunsOnFreshSeeds executes every registered experiment
// (paper and extra) on a seed none of the shape tests use, guarding
// against seed-sensitive crashes and empty reports.
func TestEveryExperimentRunsOnFreshSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range append(All(), Extra()...) {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := e.Run(20260706).String()
			if len(strings.TrimSpace(out)) < 40 {
				t.Fatalf("suspiciously short report:\n%s", out)
			}
		})
	}
}
