package experiments

import (
	"fmt"
	"math"
	"strings"

	psbox "psbox"
	"psbox/internal/account"
	"psbox/internal/core"
	"psbox/internal/sim"
)

// Fig6Cell is one co-running measurement: the victim's energy as reported
// by one approach, and its deviation from that approach's running-alone
// reference.
type Fig6Cell struct {
	With   string
	MJ     float64
	DevPct float64
}

// Fig6Row is one hardware-scope row of the Fig. 6 grid.
type Fig6Row struct {
	Scope string
	App   string

	PSBoxAloneMJ    float64
	PSBox           []Fig6Cell
	BaselineAloneMJ float64
	Baseline        []Fig6Cell

	MaxPSBoxDevPct    float64
	MaxBaselineDevPct float64
}

// Fig6Result is the full grid.
type Fig6Result struct {
	Rows []Fig6Row
}

// fig6Scenario describes one row's workloads.
type fig6Scenario struct {
	scope      core.HW
	platform   func(uint64) *psbox.System
	victim     string
	coRunners  [][]string
	span       sim.Duration
	policy     account.Policy
	coSaturate bool // co-runners run back to back (SDK benchmark kernels)
}

func fig6Scenarios() []fig6Scenario {
	return []fig6Scenario{
		{
			scope: psbox.HWCPU, platform: psbox.NewAM57, victim: "calib3d",
			coRunners: [][]string{{"bodytrack"}, {"dedup"}},
			span:      3 * sim.Second, policy: account.PolicyUsageShare,
		},
		{
			scope: psbox.HWDSP, platform: psbox.NewAM57, victim: "dgemm",
			coRunners: [][]string{{"sgemm"}, {"monte", "sgemm"}},
			span:      5 * sim.Second, policy: account.PolicyUsageShare,
			coSaturate: true,
		},
		{
			scope: psbox.HWGPU, platform: psbox.NewAM57, victim: "browser",
			coRunners: [][]string{{"magic"}, {"triangle"}},
			span:      3 * sim.Second, policy: account.PolicyUsageShare,
		},
		{
			scope: psbox.HWWiFi, platform: psbox.NewBeagleBone, victim: "browserw",
			coRunners: [][]string{{"scp"}, {"wget"}},
			span:      4 * sim.Second, policy: account.PolicyUsageShare,
		},
	}
}

// Fig6 runs the whole grid: for each scope, the victim alone and with two
// different co-runner sets, under psbox and under the baseline accounting.
func Fig6(seed uint64) Fig6Result {
	var out Fig6Result
	for _, sc := range fig6Scenarios() {
		row := Fig6Row{Scope: string(sc.scope), App: sc.victim}

		runPSBox := func(co []string) float64 {
			sys := sc.platform(seed)
			victim := install(sys, sc.victim, false)
			for _, c := range co {
				install(sys, c, sc.coSaturate)
			}
			box := sys.Sandbox.MustCreate(victim, sc.scope)
			box.Enter()
			sys.Run(sc.span)
			return mj(box.Read())
		}
		runBaseline := func(co []string) float64 {
			sys := sc.platform(seed)
			victim := install(sys, sc.victim, false)
			for _, c := range co {
				install(sys, c, sc.coSaturate)
			}
			sys.Run(sc.span)
			acc := sys.Accountant(string(sc.scope), sc.policy)
			return mj(acc.AppEnergy(victim.ID, 0, sys.Now()))
		}

		row.PSBoxAloneMJ = runPSBox(nil)
		row.BaselineAloneMJ = runBaseline(nil)
		for _, co := range sc.coRunners {
			label := strings.Join(co, "+")
			pm := runPSBox(co)
			bm := runBaseline(co)
			pc := Fig6Cell{With: label, MJ: pm, DevPct: pct(pm, row.PSBoxAloneMJ)}
			bc := Fig6Cell{With: label, MJ: bm, DevPct: pct(bm, row.BaselineAloneMJ)}
			row.PSBox = append(row.PSBox, pc)
			row.Baseline = append(row.Baseline, bc)
			if d := math.Abs(pc.DevPct); d > row.MaxPSBoxDevPct {
				row.MaxPSBoxDevPct = d
			}
			if d := math.Abs(bc.DevPct); d > row.MaxBaselineDevPct {
				row.MaxBaselineDevPct = d
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func (r Fig6Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 6 — elimination of power entanglement (victim energy, mJ)"))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "\n[%s] %s, alone: psbox %.1f mJ | baseline %.1f mJ\n",
			strings.ToUpper(row.Scope), row.App, row.PSBoxAloneMJ, row.BaselineAloneMJ)
		for i := range row.PSBox {
			fmt.Fprintf(&b, "  w/ %-14s psbox %8.1f mJ (%+6.1f%%)   baseline %8.1f mJ (%+6.1f%%)\n",
				row.PSBox[i].With, row.PSBox[i].MJ, row.PSBox[i].DevPct,
				row.Baseline[i].MJ, row.Baseline[i].DevPct)
		}
		fmt.Fprintf(&b, "  max |dev|: psbox %.1f%% vs baseline %.1f%%\n",
			row.MaxPSBoxDevPct, row.MaxBaselineDevPct)
	}
	b.WriteString("\n→ psbox keeps the app's observation nearly invariant to co-runners; the baseline's shares swing widely\n")
	return b.String()
}
