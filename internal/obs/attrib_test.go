package obs

import (
	"math"
	"strings"
	"testing"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

const period = 10 * sim.Microsecond

func sumShares(t *testing.T, bl Blame) float64 {
	t.Helper()
	var sum float64
	for i := 1; i < len(bl.Shares); i++ {
		if bl.Shares[i-1].Owner >= bl.Shares[i].Owner {
			t.Fatalf("shares not sorted by owner: %+v", bl.Shares)
		}
	}
	for _, sh := range bl.Shares {
		if sh.Frac < 0 {
			t.Fatalf("negative share %+v", sh)
		}
		sum += sh.Frac
	}
	return sum
}

func checkUnity(t *testing.T, blames []Blame) {
	t.Helper()
	for _, bl := range blames {
		if sum := sumShares(t, bl); math.Abs(sum-1.0) > 1e-12 {
			t.Fatalf("sample at %d: shares sum to %.15f, want 1.0 (%+v)", int64(bl.T), sum, bl.Shares)
		}
	}
}

func share(bl Blame, owner int) float64 {
	for _, sh := range bl.Shares {
		if sh.Owner == owner {
			return sh.Frac
		}
	}
	return 0
}

// A sample window straddling a context switch: owner 1 runs the first
// 4 µs of the window, owner 2 the remaining 6 µs. Blame splits 0.4/0.6
// with no idle share, and still sums to 1.0.
func TestAttributeWindowStraddlesContextSwitch(t *testing.T) {
	lo := sim.Time(100 * sim.Microsecond)
	sw := lo.Add(4 * sim.Microsecond)
	samples := []power.Sample{{T: lo, W: 2.0}}
	intervals := []Interval{
		{Start: lo.Add(-50 * sim.Microsecond), End: sw, Owner: 1},
		{Start: sw, End: lo.Add(300 * sim.Microsecond), Owner: 2},
	}
	blames := Attribute(samples, period, intervals, nil)
	if len(blames) != 1 {
		t.Fatalf("got %d blames, want 1", len(blames))
	}
	checkUnity(t, blames)
	bl := blames[0]
	if got := share(bl, 1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("owner 1 share = %f, want 0.4", got)
	}
	if got := share(bl, 2); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("owner 2 share = %f, want 0.6", got)
	}
	if got := share(bl, 0); math.Abs(got) > 1e-12 {
		t.Errorf("idle share = %f, want 0", got)
	}
	if bl.Degraded {
		t.Error("no gap, should not be degraded")
	}
}

// An accelerator command overlapping a DVFS transition: the command span
// covers the whole window while a second (kernel, owner 0) activity span
// overlaps part of it — e.g. the driver busy during the transition. The
// overlap inflates owner 0's occupancy, which folds into the idle share;
// totals still sum to 1.0 and the command owner keeps the majority.
func TestAttributeAccelCommandOverlapsDVFSTransition(t *testing.T) {
	lo := sim.Time(500 * sim.Microsecond)
	samples := []power.Sample{{T: lo, W: 1.5}}
	intervals := []Interval{
		// The accel command occupies the full window.
		{Start: lo, End: lo.Add(period), Owner: 3},
		// The DVFS transition work (kernel) covers the middle 2 µs.
		{Start: lo.Add(4 * sim.Microsecond), End: lo.Add(6 * sim.Microsecond), Owner: 0},
	}
	blames := Attribute(samples, period, intervals, nil)
	checkUnity(t, blames)
	bl := blames[0]
	// Occupancy: owner3 = 10µs, owner0 = 2µs, total 12µs, covered 10µs.
	// owner3 = 10/12, owner0 share (2/12) folds into idle (coverage is
	// full, so no uncovered remainder).
	if got, want := share(bl, 3), 10.0/12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("owner 3 share = %f, want %f", got, want)
	}
	if got, want := share(bl, 0), 2.0/12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("kernel/idle share = %f, want %f", got, want)
	}
}

// A fault-injected meter dropout: samples inside the gap are missing
// (degraded metering); the samples whose windows touch the gap edges are
// flagged Degraded, and shares still sum to 1.0 on every surviving
// sample.
func TestAttributeDropoutGapMarksDegraded(t *testing.T) {
	base := sim.Time(0)
	var samples []power.Sample
	for i := 0; i < 10; i++ {
		tt := base.Add(sim.Duration(i) * period)
		// Samples 4..6 lost to the dropout, as Meter.Samples would filter.
		if i >= 4 && i <= 6 {
			continue
		}
		samples = append(samples, power.Sample{T: tt, W: 1.0})
	}
	gap := Gap{From: base.Add(4 * period), To: base.Add(7 * period)}
	intervals := []Interval{{Start: base, End: base.Add(10 * period), Owner: 1}}
	blames := Attribute(samples, period, intervals, []Gap{gap})
	if len(blames) != 7 {
		t.Fatalf("got %d blames, want 7", len(blames))
	}
	checkUnity(t, blames)
	for _, bl := range blames {
		// Window [30µs, 40µs) touches the gap start? No: gap starts at
		// 40µs, the window is half-open so sample 3 is clean. Only
		// windows overlapping [40µs, 70µs) are degraded — all were
		// dropped, so every surviving sample must be clean.
		if bl.Degraded {
			t.Errorf("sample at %d unexpectedly degraded", int64(bl.T))
		}
		if got := share(bl, 1); math.Abs(got-1.0) > 1e-12 {
			t.Errorf("sample at %d: owner 1 share = %f, want 1.0", int64(bl.T), got)
		}
	}

	// A straddling gap — not aligned to sample windows — marks the edge
	// samples degraded while their shares still sum to 1.0.
	gap2 := Gap{From: base.Add(4*period + 5*sim.Microsecond), To: base.Add(5 * period)}
	blames = Attribute(samples, period, intervals, []Gap{gap2})
	checkUnity(t, blames)
	degraded := 0
	for _, bl := range blames {
		if bl.Degraded {
			degraded++
			if bl.T != base.Add(4*period) {
				t.Errorf("unexpected degraded sample at %d", int64(bl.T))
			}
		}
	}
	// Sample 4 survived dropout filtering in this variant? It is in the
	// input list only if i<4 || i>6 — sample 4 was filtered above, so no
	// retained window overlaps [45µs, 50µs).
	if degraded != 0 {
		t.Errorf("degraded = %d, want 0 (overlapping samples were dropped)", degraded)
	}

	// With the full sample set (no filtering) the straddled window IS
	// flagged.
	var full []power.Sample
	for i := 0; i < 10; i++ {
		full = append(full, power.Sample{T: base.Add(sim.Duration(i) * period), W: 1.0})
	}
	blames = Attribute(full, period, intervals, []Gap{gap2})
	checkUnity(t, blames)
	degraded = 0
	for _, bl := range blames {
		if bl.Degraded {
			degraded++
		}
	}
	if degraded != 1 {
		t.Errorf("degraded = %d, want exactly the straddled window", degraded)
	}
}

// Idle-only windows blame everything on owner 0.
func TestAttributeIdleWindow(t *testing.T) {
	samples := []power.Sample{{T: 0, W: 0.4}}
	blames := Attribute(samples, period, nil, nil)
	checkUnity(t, blames)
	if got := share(blames[0], 0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("idle share = %f, want 1.0", got)
	}
}

func TestAttributePanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on non-positive period")
		}
	}()
	Attribute(nil, 0, nil, nil)
}

func TestIntervalsFromEventsFiltersRailAndType(t *testing.T) {
	events := []Event{
		{Type: TypeSpan, T: 0, End: 10, Cat: CatSched, Kind: "run", Owner: 1, Rail: "cpu"},
		{Type: TypeInstant, T: 5, End: 5, Cat: CatSched, Kind: "switch", Owner: 1, Rail: "cpu"},
		{Type: TypeSpan, T: 3, End: 8, Cat: CatAccel, Kind: "exec", Owner: 2, Rail: "gpu"},
	}
	ivs := IntervalsFromEvents(events, "cpu")
	if len(ivs) != 1 || ivs[0].Owner != 1 || ivs[0].End != 10 {
		t.Fatalf("got %+v, want the single cpu span", ivs)
	}
}

// Zero-duration intervals — a task that was switched in and immediately
// out at the same instant, or a span whose clipped extent collapses onto
// the window edge — contribute no occupancy, never produce NaN shares,
// and leave the window to whoever actually ran.
func TestAttributeZeroDurationIntervals(t *testing.T) {
	lo := sim.Time(100 * sim.Microsecond)
	samples := []power.Sample{{T: lo, W: 1.0}}
	intervals := []Interval{
		{Start: lo.Add(2 * sim.Microsecond), End: lo.Add(2 * sim.Microsecond), Owner: 1}, // zero width
		{Start: lo.Add(-5 * sim.Microsecond), End: lo, Owner: 2},                         // clips to zero at the window edge
		{Start: lo, End: lo.Add(period), Owner: 3},                                       // real occupant
	}
	blames := Attribute(samples, period, intervals, nil)
	checkUnity(t, blames)
	bl := blames[0]
	if got := share(bl, 1); got != 0 {
		t.Errorf("zero-duration interval got share %f", got)
	}
	if got := share(bl, 2); got != 0 {
		t.Errorf("edge-clipped interval got share %f", got)
	}
	if got := share(bl, 3); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("occupant share = %f, want 1.0", got)
	}

	// Only zero-duration intervals: the whole window is idle, and the
	// fraction arithmetic must not divide by the zero total occupancy.
	blames = Attribute(samples, period, intervals[:2], nil)
	checkUnity(t, blames)
	if got := share(blames[0], 0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("idle share = %f, want 1.0 with only zero-width intervals", got)
	}
}

// Dropout-gap boundaries are half-open on both sides: a window that ends
// exactly where the gap starts, or starts exactly where the gap ends, is
// clean; one nanosecond of true overlap flags it.
func TestAttributeSampleOnGapBoundary(t *testing.T) {
	lo := sim.Time(200 * sim.Microsecond)
	hi := lo.Add(period)
	samples := []power.Sample{{T: lo, W: 1.0}}
	intervals := []Interval{{Start: lo, End: hi, Owner: 1}}

	for _, tc := range []struct {
		name     string
		gap      Gap
		degraded bool
	}{
		{"gap starts exactly at window end", Gap{From: hi, To: hi.Add(period)}, false},
		{"gap ends exactly at window start", Gap{From: lo.Add(-period), To: lo}, false},
		{"gap overlaps the last nanosecond", Gap{From: hi.Add(-1), To: hi.Add(period)}, true},
		{"gap overlaps the first nanosecond", Gap{From: lo.Add(-period), To: lo.Add(1)}, true},
		{"gap swallows the window", Gap{From: lo.Add(-period), To: hi.Add(period)}, true},
	} {
		blames := Attribute(samples, period, intervals, []Gap{tc.gap})
		checkUnity(t, blames)
		if blames[0].Degraded != tc.degraded {
			t.Errorf("%s: degraded = %v, want %v", tc.name, blames[0].Degraded, tc.degraded)
		}
	}
}

// A rail with no activity spans at all — a device that never powered a
// task during the run — attributes every sample wholly to idle, across
// the whole timeline, degraded flags intact.
func TestAttributeEmptyIntervalsRail(t *testing.T) {
	var samples []power.Sample
	for i := 0; i < 5; i++ {
		samples = append(samples, power.Sample{T: sim.Time(i) * sim.Time(period), W: 0.25})
	}
	gap := Gap{From: sim.Time(2 * period), To: sim.Time(3 * period)}
	// IntervalsFromEvents on a rail with no matching spans yields nil.
	ivs := IntervalsFromEvents([]Event{
		{Type: TypeSpan, T: 0, End: 10, Cat: CatSched, Kind: "run", Owner: 1, Rail: "cpu"},
	}, "gps")
	if ivs != nil {
		t.Fatalf("expected no gps intervals, got %+v", ivs)
	}
	blames := Attribute(samples, period, ivs, []Gap{gap})
	if len(blames) != 5 {
		t.Fatalf("got %d blames, want 5", len(blames))
	}
	checkUnity(t, blames)
	for i, bl := range blames {
		if got := share(bl, 0); math.Abs(got-1.0) > 1e-12 {
			t.Errorf("sample %d: idle share = %f, want 1.0", i, got)
		}
		if want := i == 2; bl.Degraded != want {
			t.Errorf("sample %d: degraded = %v, want %v", i, bl.Degraded, want)
		}
	}
}

func TestWriteBlameStableText(t *testing.T) {
	blames := []Blame{
		{T: 1000, W: 2.5, Shares: []Share{{Owner: 0, Frac: 0.25}, {Owner: 1, Frac: 0.75}}},
		{T: 2000, W: 2.5, Degraded: true, Shares: []Share{{Owner: 0, Frac: 1.0}}},
	}
	var b strings.Builder
	if err := WriteBlame(&b, "cpu", blames, map[int]string{1: "vision#1"}); err != nil {
		t.Fatal(err)
	}
	want := "# blame timeline rail=cpu samples=2\n" +
		"        1000   2.5000W idle=0.2500 vision#1=0.7500\n" +
		"        2000   2.5000W DEGRADED idle=1.0000\n"
	if b.String() != want {
		t.Fatalf("blame text:\n%s\nwant:\n%s", b.String(), want)
	}
}
