package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"psbox/internal/sim"
)

// busForExport builds a small deterministic dump, optionally overflowing
// the ring.
func busForExport(overflow bool) *Bus {
	capacity := 64
	if overflow {
		capacity = 4
	}
	eng := sim.NewEngine()
	b := NewBus(eng, capacity)
	b.NameOwner(1, "vision#1")
	b.NameOwner(2, `odd"name`)
	b.Enable()
	eng.At(sim.Time(2*sim.Millisecond), func(sim.Time) {
		b.Span(CatSched, "run", 1, 0, "cpu", "vision#1/render", 0)
		b.Instant(CatSched, "switch", 1, 0, "cpu", "vision#1/render")
		b.Span(CatAccel, "exec", 2, 7, "gpu", "frame", sim.Time(sim.Millisecond))
		b.Instant(CatDVFS, "freq-change", 0, 1<<32|2, "cpu", "cpu")
		b.Instant(CatFault, "nic-flap", 0, 1, "", "wifi")
		b.Instant(CatNIC, "mode-active", 0, 0, "wifi", "wifi")
	})
	eng.RunFor(2 * sim.Millisecond)
	return b
}

func TestEncoderForUnknownFormat(t *testing.T) {
	if _, err := EncoderFor("svg"); err == nil {
		t.Fatal("want error for unknown format")
	}
	for _, f := range []string{"perfetto", "csv", "ascii"} {
		if _, err := EncoderFor(f); err != nil {
			t.Fatalf("EncoderFor(%q): %v", f, err)
		}
	}
}

func encodeAll(t *testing.T, d *Dump) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, f := range []string{"perfetto", "csv", "ascii"} {
		enc, err := EncoderFor(f)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := enc.Encode(&b, d); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		out[f] = b.Bytes()
	}
	return out
}

// Identical dumps must give identical bytes in every format — the
// determinism contract the CI goldens enforce.
func TestEncodersAreByteDeterministic(t *testing.T) {
	a := encodeAll(t, busForExport(false).Dump())
	for i := 0; i < 3; i++ {
		b := encodeAll(t, busForExport(false).Dump())
		for f := range a {
			if !bytes.Equal(a[f], b[f]) {
				t.Fatalf("%s output differs between identical dumps", f)
			}
		}
	}
}

// The Perfetto output must be valid JSON with the expected envelope.
func TestPerfettoIsValidTraceEventJSON(t *testing.T) {
	raw := encodeAll(t, busForExport(false).Dump())["perfetto"]
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Tid  int             `json:"tid"`
			Ts   json.Number     `json:"ts"`
			Dur  json.Number     `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Dropped uint64 `json:"dropped_events"`
			Total   uint64 `json:"total_events"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v\n%s", err, raw)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData.Total != 6 || doc.OtherData.Dropped != 0 {
		t.Errorf("otherData = %+v", doc.OtherData)
	}
	var phX, phI, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			phX++
		case "i":
			phI++
		case "M":
			meta++
		}
	}
	// 2 spans, 4 instants, and one process_name + one thread_name per
	// category (5 categories).
	if phX != 2 || phI != 4 || meta != 6 {
		t.Errorf("ph counts X=%d i=%d M=%d, want 2/4/6", phX, phI, meta)
	}
}

func TestCSVQuotesAndWarnsOnDrop(t *testing.T) {
	clean := string(encodeAll(t, busForExport(false).Dump())["csv"])
	if !strings.HasPrefix(clean, "seq,type,cat,kind,start_ns,end_ns,owner,owner_name,arg,rail,name\n") {
		t.Fatalf("csv header missing:\n%s", clean)
	}
	if !strings.Contains(clean, `"odd""name"`) {
		t.Errorf("csv should quote embedded quotes:\n%s", clean)
	}
	if strings.Contains(clean, "WARNING") {
		t.Errorf("no drops, no warning expected")
	}

	dropped := string(encodeAll(t, busForExport(true).Dump())["csv"])
	if !strings.Contains(dropped, "# WARNING: trace ring dropped 2 events (oldest first)") {
		t.Errorf("csv drop warning missing:\n%s", dropped)
	}
}

func TestASCIIReportsAndWarnsOnDrop(t *testing.T) {
	clean := string(encodeAll(t, busForExport(false).Dump())["ascii"])
	if !strings.Contains(clean, "psbox trace: 6 events retained (2 spans), 0 dropped") {
		t.Fatalf("ascii header:\n%s", clean)
	}
	if !strings.Contains(clean, "sched") || !strings.Contains(clean, "accel") {
		t.Errorf("ascii should render span lanes:\n%s", clean)
	}
	if !strings.Contains(clean, "1 × dvfs/freq-change") {
		t.Errorf("ascii should tally instants:\n%s", clean)
	}

	dropped := string(encodeAll(t, busForExport(true).Dump())["ascii"])
	if !strings.Contains(dropped, "WARNING: trace ring dropped 2 events (oldest first)") {
		t.Errorf("ascii drop warning missing:\n%s", dropped)
	}
}
