// Package obs is psbox's deterministic observability layer: a typed event
// bus of spans and instants stamped with simulated time, a metrics
// registry keyed by owner app and power rail, an attribution joiner that
// blames each meter sample on the entities active in its window, and
// pluggable exporters (Chrome trace-event JSON, CSV, ASCII).
//
// Everything here is a pure function of the simulation: events carry only
// sim.Time stamps and values derived from simulated state, the ring drops
// oldest-first with an exact counter, and reports are emitted in sorted
// canonical order. The bus snapshots like any other stateful layer, so a
// trace survives crash-and-resume byte-for-byte (DESIGN.md
// §"Observability").
package obs

import (
	"fmt"

	"psbox/internal/sim"
)

// Type distinguishes point events from intervals.
type Type uint8

// The two event shapes.
const (
	// TypeInstant marks a point in simulated time (a state change, a
	// fault firing, a watchdog action).
	TypeInstant Type = iota
	// TypeSpan covers an interval [T, End) during which an entity was
	// active (a task on a core, a command on an accelerator, a frame in
	// the air).
	TypeSpan
)

// String names the type for renderers.
func (t Type) String() string {
	if t == TypeSpan {
		return "span"
	}
	return "instant"
}

// Event categories, one per instrumented subsystem. Exporters group
// events by category (Perfetto maps each to a named track).
const (
	CatSim   = "sim"        // engine milestones
	CatSched = "sched"      // CPU scheduler: switches, run spans, coscheduling
	CatAccel = "accel"      // accelerator driver: commands, phases, watchdog
	CatNet   = "net"        // packet scheduler: transmissions, phases
	CatDVFS  = "dvfs"       // CPU operating-point transitions and stalls
	CatNIC   = "nic"        // NIC power-state changes (PSM/active/tail)
	CatMeter = "meter"      // DAQ sample-window events (dropouts)
	CatFault = "fault"      // injected faults, mirrored from the fault log
	CatBox   = "box"        // power sandbox lifecycle and residency
	CatCkpt  = "checkpoint" // checkpoint instants from the soak harness
	// CatSession: sandbox-manager session lifecycle — admission, budget
	// violations, throttle windows, kills, restarts, quarantine.
	CatSession = "session"
)

// Event is one trace record. All strings are constants or names that
// already exist in the simulation (no per-event formatting), so emitting
// an event allocates nothing beyond its ring slot.
type Event struct {
	Seq  uint64   // 1-based emission order, gap-free even across drops
	Type Type     //
	T    sim.Time // instant, or span start
	End  sim.Time // span end; == T for instants
	Cat  string   // subsystem category (Cat* constants)
	Kind string   // event kind within the category
	// Owner is the owning app ID; 0 means the kernel / no single owner.
	Owner int
	// Arg is a kind-specific scalar (command ID, frequency index, core,
	// fired-event count, ...).
	Arg int64
	// Rail names the power rail the event draws on, "" if none. The
	// attribution joiner matches span rails against meter rails.
	Rail string
	// Name is the entity involved (task, device, core, target), "" if none.
	Name string
}

// String renders one stable line for debugging and ASCII reports.
func (e Event) String() string {
	if e.Type == TypeSpan {
		return fmt.Sprintf("%12d %12d %-10s %-16s owner=%d arg=%d rail=%s name=%s",
			int64(e.T), int64(e.End), e.Cat, e.Kind, e.Owner, e.Arg, e.Rail, e.Name)
	}
	return fmt.Sprintf("%12d %12s %-10s %-16s owner=%d arg=%d rail=%s name=%s",
		int64(e.T), "-", e.Cat, e.Kind, e.Owner, e.Arg, e.Rail, e.Name)
}

// DefaultCapacity bounds the ring when NewBus is given no capacity.
const DefaultCapacity = 1 << 16

// Bus collects events and metrics for one simulated system. It is
// disabled by default: every emission checks the flag first, so an idle
// bus costs one branch per call site and changes nothing observable.
// A nil *Bus is also safe to emit into, so subsystems never need to
// guard their instrumentation. A Bus is confined to the goroutine that
// drives its simulation; deterministic replay depends on emission order.
//
//psbox:confined
type Bus struct {
	eng     *sim.Engine
	enabled bool

	ring    []Event
	start   int // ring index of the oldest retained event
	n       int // events currently retained
	seq     uint64
	dropped uint64

	owners   map[int]string
	counters map[Key]int64
	gauges   map[Key]float64
	hists    map[Key]*Hist
}

// NewBus returns a disabled bus over the engine. capacity bounds the event
// ring; non-positive means DefaultCapacity.
func NewBus(eng *sim.Engine, capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Bus{
		eng:      eng,
		ring:     make([]Event, capacity),
		owners:   make(map[int]string),
		counters: make(map[Key]int64),
		gauges:   make(map[Key]float64),
		hists:    make(map[Key]*Hist),
	}
}

// Enable turns emission on.
func (b *Bus) Enable() { b.enabled = true }

// Disable turns emission off; retained events stay.
func (b *Bus) Disable() { b.enabled = false }

// Enabled reports whether the bus is recording.
func (b *Bus) Enabled() bool { return b != nil && b.enabled }

// Capacity reports the ring bound.
func (b *Bus) Capacity() int { return len(b.ring) }

// NameOwner registers the display name for an owner app ID. Names flow
// into exports; registration is idempotent and works even while disabled
// so early app creation is never lost.
func (b *Bus) NameOwner(id int, name string) {
	if b == nil {
		return
	}
	b.owners[id] = name
}

// OwnerName returns the registered name for id, or "".
func (b *Bus) OwnerName(id int) string {
	if b == nil {
		return ""
	}
	return b.owners[id]
}

// push appends one event, dropping the oldest when the ring is full.
// Seq keeps counting across drops so truncation is always visible.
func (b *Bus) push(ev Event) {
	b.seq++
	ev.Seq = b.seq
	if b.n == len(b.ring) {
		b.ring[b.start] = ev
		b.start = (b.start + 1) % len(b.ring)
		b.dropped++
		return
	}
	b.ring[(b.start+b.n)%len(b.ring)] = ev
	b.n++
}

// Instant records a point event at the current simulated time.
func (b *Bus) Instant(cat, kind string, owner int, arg int64, rail, name string) {
	if b == nil || !b.enabled {
		return
	}
	now := b.eng.Now()
	b.push(Event{Type: TypeInstant, T: now, End: now,
		Cat: cat, Kind: kind, Owner: owner, Arg: arg, Rail: rail, Name: name})
}

// Span records an interval event ending at the current simulated time.
func (b *Bus) Span(cat, kind string, owner int, arg int64, rail, name string, start sim.Time) {
	if b == nil || !b.enabled {
		return
	}
	b.push(Event{Type: TypeSpan, T: start, End: b.eng.Now(),
		Cat: cat, Kind: kind, Owner: owner, Arg: arg, Rail: rail, Name: name})
}

// Dropped reports how many events the ring has discarded (oldest-first).
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// Total reports how many events have ever been emitted.
func (b *Bus) Total() uint64 {
	if b == nil {
		return 0
	}
	return b.seq
}

// Len reports how many events the ring currently retains.
func (b *Bus) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Events returns the retained events oldest-first.
func (b *Bus) Events() []Event {
	if b == nil {
		return nil
	}
	out := make([]Event, 0, b.n)
	for i := 0; i < b.n; i++ {
		out = append(out, b.ring[(b.start+i)%len(b.ring)])
	}
	return out
}

// Dump captures everything an exporter needs.
func (b *Bus) Dump() *Dump {
	d := &Dump{Owners: make(map[int]string)}
	if b == nil {
		return d
	}
	d.Events = b.Events()
	d.Dropped = b.dropped
	d.Total = b.seq
	for id, name := range b.owners {
		d.Owners[id] = name
	}
	return d
}
