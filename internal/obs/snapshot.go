package obs

import (
	"sort"

	"psbox/internal/snapshot"
)

// Snapshot encodes the bus canonically: emission accounting, the
// owner-name table and metric maps in sorted key order, and the retained
// ring oldest-first. Traces therefore survive crash-and-resume: the
// replay twin re-emits the same events and Restore's byte comparison
// proves it.
func (b *Bus) Snapshot(enc *snapshot.Encoder) {
	enc.Bool(b.enabled)
	enc.U64(b.seq)
	enc.U64(b.dropped)
	enc.Len(len(b.ring))

	ids := make([]int, 0, len(b.owners))
	for id := range b.owners {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	enc.Len(len(ids))
	for _, id := range ids {
		enc.I64(int64(id))
		enc.Str(b.owners[id])
	}

	enc.Len(b.n)
	for i := 0; i < b.n; i++ {
		ev := b.ring[(b.start+i)%len(b.ring)]
		enc.U64(ev.Seq)
		enc.U8(uint8(ev.Type))
		enc.I64(int64(ev.T))
		enc.I64(int64(ev.End))
		enc.Str(ev.Cat)
		enc.Str(ev.Kind)
		enc.I64(int64(ev.Owner))
		enc.I64(ev.Arg)
		enc.Str(ev.Rail)
		enc.Str(ev.Name)
	}

	encKey := func(k Key) {
		enc.Str(k.Name)
		enc.I64(int64(k.Owner))
		enc.Str(k.Rail)
	}
	cks := sortKeys(b.counters)
	enc.Len(len(cks))
	for _, k := range cks {
		encKey(k)
		enc.I64(b.counters[k])
	}
	gks := sortKeys(b.gauges)
	enc.Len(len(gks))
	for _, k := range gks {
		encKey(k)
		enc.F64(b.gauges[k])
	}
	hks := sortKeys(b.hists)
	enc.Len(len(hks))
	for _, k := range hks {
		encKey(k)
		h := b.hists[k]
		enc.U64(h.Count)
		enc.I64(int64(h.Sum))
		for _, n := range h.Buckets {
			enc.U64(n)
		}
	}
}

// Restore verifies the live bus against a checkpoint section, per the
// replay-twin contract.
func (b *Bus) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, b.Snapshot) }
