package obs

import (
	"fmt"
	"io"
	"sort"

	"psbox/internal/sim"
)

// Key identifies one metric series: a name qualified by the owning app
// and the power rail it concerns. Owner 0 / empty rail mean "whole
// system".
type Key struct {
	Name  string
	Owner int
	Rail  string
}

// histBounds are the sim-time histogram bucket upper bounds; a final
// implicit +Inf bucket catches the rest. Latencies in the simulator span
// microseconds (wakeups) to seconds (balloon drains), hence the decades.
var histBounds = []sim.Duration{
	10 * sim.Microsecond,
	100 * sim.Microsecond,
	sim.Millisecond,
	10 * sim.Millisecond,
	100 * sim.Millisecond,
	sim.Second,
}

// histLabels renders the bucket bounds once for reports.
var histLabels = [numBuckets]string{"10us", "100us", "1ms", "10ms", "100ms", "1s", "+inf"}

// numBuckets is len(histBounds) plus the implicit +Inf bucket.
const numBuckets = 7

// Hist is a fixed-bucket histogram over simulated durations.
type Hist struct {
	Buckets [numBuckets]uint64 // non-cumulative counts per bucket
	Count   uint64
	Sum     sim.Duration
}

func (h *Hist) observe(d sim.Duration) {
	i := 0
	for ; i < len(histBounds); i++ {
		if d <= histBounds[i] {
			break
		}
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += d
}

// Observe records one duration directly into the histogram. It is the
// bus-free entry point: the fleet rollup feeds per-device quantities
// through it without needing a live bus.
func (h *Hist) Observe(d sim.Duration) { h.observe(d) }

// Merge adds o's observations bucket-wise. Fixed bucket bounds make this
// exact: merging shard histograms then asking for a quantile equals
// observing every shard's values into one histogram.
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Quantile returns the value at fraction q of the distribution (q in
// [0, 1]), linearly interpolated inside the containing bucket. Bucketed
// quantiles are estimates with bucket-width resolution — the JetsonLEAP
// bounded-error discipline: cheap, deterministic, and honest about
// granularity. Observations in the +Inf bucket clamp to the last finite
// bound. Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) sim.Duration {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i := 0; i < numBuckets; i++ {
		n := float64(h.Buckets[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			var lower sim.Duration
			if i > 0 {
				lower = histBounds[i-1]
			}
			upper := histBounds[len(histBounds)-1]
			if i < len(histBounds) {
				upper = histBounds[i]
			}
			if lower > upper {
				lower = upper
			}
			return lower + sim.Duration(float64(upper-lower)*(rank-cum)/n)
		}
		cum += n
	}
	return histBounds[len(histBounds)-1]
}

// P50 is the median estimate.
func (h *Hist) P50() sim.Duration { return h.Quantile(0.50) }

// P95 is the 95th-percentile estimate.
func (h *Hist) P95() sim.Duration { return h.Quantile(0.95) }

// P99 is the 99th-percentile estimate.
func (h *Hist) P99() sim.Duration { return h.Quantile(0.99) }

// Count adds n to a counter.
func (b *Bus) Count(name string, owner int, rail string, n int64) {
	if b == nil || !b.enabled {
		return
	}
	b.counters[Key{name, owner, rail}] += n
}

// Gauge sets a gauge to its latest value.
func (b *Bus) Gauge(name string, owner int, rail string, v float64) {
	if b == nil || !b.enabled {
		return
	}
	b.gauges[Key{name, owner, rail}] = v
}

// Observe records one duration into a histogram.
func (b *Bus) Observe(name string, owner int, rail string, d sim.Duration) {
	if b == nil || !b.enabled {
		return
	}
	h := b.hists[Key{name, owner, rail}]
	if h == nil {
		h = &Hist{}
		b.hists[Key{name, owner, rail}] = h
	}
	h.observe(d)
}

// Counter reads a counter (0 if never written).
func (b *Bus) Counter(name string, owner int, rail string) int64 {
	if b == nil {
		return 0
	}
	return b.counters[Key{name, owner, rail}]
}

// GaugeValue reads a gauge (0 if never written).
func (b *Bus) GaugeValue(name string, owner int, rail string) float64 {
	if b == nil {
		return 0
	}
	return b.gauges[Key{name, owner, rail}]
}

// Histogram reads a histogram, or nil.
func (b *Bus) Histogram(name string, owner int, rail string) *Hist {
	if b == nil {
		return nil
	}
	return b.hists[Key{name, owner, rail}]
}

// sortKeys returns map keys in canonical (Name, Owner, Rail) order.
func sortKeys[V any](m map[Key]V) []Key {
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Rail < b.Rail
	})
	return keys
}

// MetricsDump is a portable, self-contained copy of a bus's metric state:
// the currency of the fleet rollup. A shard's dump travels in its report,
// dumps merge deterministically (Merge), and a dump renders exactly the
// bytes the live bus would have written (Write). Histograms are copied by
// value, so a dump is immune to later bus activity.
type MetricsDump struct {
	Counters map[Key]int64
	Gauges   map[Key]float64
	Hists    map[Key]*Hist
	Owners   map[int]string
	Events   uint64 // events ever emitted on the source bus(es)
	Dropped  uint64 // events the source ring(s) discarded
}

// NewMetricsDump returns an empty dump ready to merge into.
func NewMetricsDump() *MetricsDump {
	return &MetricsDump{
		Counters: make(map[Key]int64),
		Gauges:   make(map[Key]float64),
		Hists:    make(map[Key]*Hist),
		Owners:   make(map[int]string),
	}
}

// DumpMetrics copies the bus's metric registry into a portable dump.
func (b *Bus) DumpMetrics() *MetricsDump {
	d := NewMetricsDump()
	if b == nil {
		return d
	}
	for k, v := range b.counters {
		d.Counters[k] = v
	}
	for k, v := range b.gauges {
		d.Gauges[k] = v
	}
	for k, h := range b.hists {
		cp := *h
		d.Hists[k] = &cp
	}
	for id, name := range b.owners {
		d.Owners[id] = name
	}
	d.Events = b.seq
	d.Dropped = b.dropped
	return d
}

// Merge folds o into d: counters, histograms, and emission accounting
// add; gauges add too, making a merged gauge the fleet-wide total of a
// per-device level (document per metric if a mean is wanted — divide by
// the device count at render time). Owner names are first-writer-wins;
// shards built from one scenario register identical tables, so the choice
// never shows. Merging is commutative except for float gauge addition —
// callers merge in ascending shard-ID order to fix the summation order.
func (d *MetricsDump) Merge(o *MetricsDump) {
	if o == nil {
		return
	}
	for _, k := range sortKeys(o.Counters) {
		d.Counters[k] += o.Counters[k]
	}
	for _, k := range sortKeys(o.Gauges) {
		d.Gauges[k] += o.Gauges[k]
	}
	for _, k := range sortKeys(o.Hists) {
		h := d.Hists[k]
		if h == nil {
			h = &Hist{}
			d.Hists[k] = h
		}
		h.Merge(o.Hists[k])
	}
	ids := make([]int, 0, len(o.Owners))
	for id := range o.Owners {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, ok := d.Owners[id]; !ok {
			d.Owners[id] = o.Owners[id]
		}
	}
	d.Events += o.Events
	d.Dropped += o.Dropped
}

// keyCols renders the owner and rail columns; "-" marks the system-wide
// defaults so columns stay aligned and grep-able.
func (d *MetricsDump) keyCols(k Key) (string, string) {
	owner := "-"
	if k.Owner != 0 {
		owner = fmt.Sprintf("%d", k.Owner)
		if name := d.Owners[k.Owner]; name != "" {
			owner = fmt.Sprintf("%d:%s", k.Owner, name)
		}
	}
	rail := k.Rail
	if rail == "" {
		rail = "-"
	}
	return owner, rail
}

// Write emits the canonical metrics report: one sorted line per series,
// counters then gauges then histograms, closed by the trace accounting
// footer. Same state, same bytes — the CI observability job diffs this
// against a committed golden, and the fleet rollup reuses the exact
// format for merged registries.
func (d *MetricsDump) Write(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# psbox metrics"); err != nil {
		return err
	}
	for _, k := range sortKeys(d.Counters) {
		owner, rail := d.keyCols(k)
		if _, err := fmt.Fprintf(w, "counter %-34s owner=%-14s rail=%-8s %d\n",
			k.Name, owner, rail, d.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortKeys(d.Gauges) {
		owner, rail := d.keyCols(k)
		if _, err := fmt.Fprintf(w, "gauge   %-34s owner=%-14s rail=%-8s %.6g\n",
			k.Name, owner, rail, d.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortKeys(d.Hists) {
		owner, rail := d.keyCols(k)
		h := d.Hists[k]
		if _, err := fmt.Fprintf(w, "hist    %-34s owner=%-14s rail=%-8s count=%d sum=%v",
			k.Name, owner, rail, h.Count, h.Sum); err != nil {
			return err
		}
		for i, label := range histLabels {
			if _, err := fmt.Fprintf(w, " le%s=%d", label, h.Buckets[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "counter %-34s owner=%-14s rail=%-8s %d\n",
		"obs.events_total", "-", "-", d.Events); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "counter %-34s owner=%-14s rail=%-8s %d\n",
		"obs.dropped_events", "-", "-", d.Dropped); err != nil {
		return err
	}
	if d.Dropped > 0 {
		if _, err := fmt.Fprintf(w, "WARNING: trace ring dropped %d events (oldest first); raise the bus capacity to keep them\n",
			d.Dropped); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetrics renders the bus's metric state in the canonical report
// format (see MetricsDump.Write).
func (b *Bus) WriteMetrics(w io.Writer) error {
	if b == nil {
		_, err := fmt.Fprintln(w, "# psbox metrics (no bus)")
		return err
	}
	return b.DumpMetrics().Write(w)
}
