package obs

import (
	"fmt"
	"io"
	"sort"

	"psbox/internal/sim"
)

// Key identifies one metric series: a name qualified by the owning app
// and the power rail it concerns. Owner 0 / empty rail mean "whole
// system".
type Key struct {
	Name  string
	Owner int
	Rail  string
}

// histBounds are the sim-time histogram bucket upper bounds; a final
// implicit +Inf bucket catches the rest. Latencies in the simulator span
// microseconds (wakeups) to seconds (balloon drains), hence the decades.
var histBounds = []sim.Duration{
	10 * sim.Microsecond,
	100 * sim.Microsecond,
	sim.Millisecond,
	10 * sim.Millisecond,
	100 * sim.Millisecond,
	sim.Second,
}

// histLabels renders the bucket bounds once for reports.
var histLabels = [numBuckets]string{"10us", "100us", "1ms", "10ms", "100ms", "1s", "+inf"}

// numBuckets is len(histBounds) plus the implicit +Inf bucket.
const numBuckets = 7

// Hist is a fixed-bucket histogram over simulated durations.
type Hist struct {
	Buckets [numBuckets]uint64 // non-cumulative counts per bucket
	Count   uint64
	Sum     sim.Duration
}

func (h *Hist) observe(d sim.Duration) {
	i := 0
	for ; i < len(histBounds); i++ {
		if d <= histBounds[i] {
			break
		}
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += d
}

// Count adds n to a counter.
func (b *Bus) Count(name string, owner int, rail string, n int64) {
	if b == nil || !b.enabled {
		return
	}
	b.counters[Key{name, owner, rail}] += n
}

// Gauge sets a gauge to its latest value.
func (b *Bus) Gauge(name string, owner int, rail string, v float64) {
	if b == nil || !b.enabled {
		return
	}
	b.gauges[Key{name, owner, rail}] = v
}

// Observe records one duration into a histogram.
func (b *Bus) Observe(name string, owner int, rail string, d sim.Duration) {
	if b == nil || !b.enabled {
		return
	}
	h := b.hists[Key{name, owner, rail}]
	if h == nil {
		h = &Hist{}
		b.hists[Key{name, owner, rail}] = h
	}
	h.observe(d)
}

// Counter reads a counter (0 if never written).
func (b *Bus) Counter(name string, owner int, rail string) int64 {
	if b == nil {
		return 0
	}
	return b.counters[Key{name, owner, rail}]
}

// GaugeValue reads a gauge (0 if never written).
func (b *Bus) GaugeValue(name string, owner int, rail string) float64 {
	if b == nil {
		return 0
	}
	return b.gauges[Key{name, owner, rail}]
}

// Histogram reads a histogram, or nil.
func (b *Bus) Histogram(name string, owner int, rail string) *Hist {
	if b == nil {
		return nil
	}
	return b.hists[Key{name, owner, rail}]
}

// sortKeys returns map keys in canonical (Name, Owner, Rail) order.
func sortKeys[V any](m map[Key]V) []Key {
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Rail < b.Rail
	})
	return keys
}

// keyCols renders the owner and rail columns; "-" marks the system-wide
// defaults so columns stay aligned and grep-able.
func (b *Bus) keyCols(k Key) (string, string) {
	owner := "-"
	if k.Owner != 0 {
		owner = fmt.Sprintf("%d", k.Owner)
		if name := b.owners[k.Owner]; name != "" {
			owner = fmt.Sprintf("%d:%s", k.Owner, name)
		}
	}
	rail := k.Rail
	if rail == "" {
		rail = "-"
	}
	return owner, rail
}

// WriteMetrics emits the canonical metrics report: one sorted line per
// series, counters then gauges then histograms, closed by the trace
// accounting footer. Same state, same bytes — the CI observability job
// diffs this against a committed golden.
func (b *Bus) WriteMetrics(w io.Writer) error {
	if b == nil {
		_, err := fmt.Fprintln(w, "# psbox metrics (no bus)")
		return err
	}
	if _, err := fmt.Fprintln(w, "# psbox metrics"); err != nil {
		return err
	}
	for _, k := range sortKeys(b.counters) {
		owner, rail := b.keyCols(k)
		if _, err := fmt.Fprintf(w, "counter %-34s owner=%-14s rail=%-8s %d\n",
			k.Name, owner, rail, b.counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortKeys(b.gauges) {
		owner, rail := b.keyCols(k)
		if _, err := fmt.Fprintf(w, "gauge   %-34s owner=%-14s rail=%-8s %.6g\n",
			k.Name, owner, rail, b.gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortKeys(b.hists) {
		owner, rail := b.keyCols(k)
		h := b.hists[k]
		if _, err := fmt.Fprintf(w, "hist    %-34s owner=%-14s rail=%-8s count=%d sum=%v",
			k.Name, owner, rail, h.Count, h.Sum); err != nil {
			return err
		}
		for i, label := range histLabels {
			if _, err := fmt.Fprintf(w, " le%s=%d", label, h.Buckets[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "counter %-34s owner=%-14s rail=%-8s %d\n",
		"obs.events_total", "-", "-", b.seq); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "counter %-34s owner=%-14s rail=%-8s %d\n",
		"obs.dropped_events", "-", "-", b.dropped); err != nil {
		return err
	}
	if b.dropped > 0 {
		if _, err := fmt.Fprintf(w, "WARNING: trace ring dropped %d events (oldest first); raise the bus capacity to keep them\n",
			b.dropped); err != nil {
			return err
		}
	}
	return nil
}
