package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"psbox/internal/sim"
	"psbox/internal/trace"
)

// Dump is the full state an exporter consumes: retained events
// oldest-first, exact drop accounting, and the owner-name table.
type Dump struct {
	Events  []Event
	Dropped uint64
	Total   uint64
	Owners  map[int]string
}

// An Encoder serializes a dump into one output format. Encoders are
// pluggable Heka-style: the bus knows nothing about formats, tools pick
// an encoder by name and stream the same dump through it.
type Encoder interface {
	Encode(w io.Writer, d *Dump) error
}

// EncoderFor maps a format name to its encoder. The names are the
// --format values psbox-trace and psbox-sim accept.
func EncoderFor(format string) (Encoder, error) {
	switch format {
	case "perfetto":
		return PerfettoEncoder{}, nil
	case "csv":
		return CSVEncoder{}, nil
	case "ascii":
		return ASCIIEncoder{}, nil
	}
	return nil, fmt.Errorf("obs: unknown trace format %q (perfetto, csv, ascii)", format)
}

// PerfettoEncoder writes Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing. Spans become "X" complete
// events and instants "i" events; each category gets its own named
// thread track. The JSON is hand-serialized in event order with fixed
// number formatting so identical dumps give identical bytes.
type PerfettoEncoder struct{}

// catTracks assigns one 1-based tid per category, sorted by name.
func catTracks(events []Event) map[string]int {
	set := make(map[string]bool)
	for _, ev := range events {
		set[ev.Cat] = true
	}
	cats := make([]string, 0, len(set))
	for c := range set {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	out := make(map[string]int, len(cats))
	for i, c := range cats {
		out[c] = i + 1
	}
	return out
}

// usec renders a nanosecond count as exact microseconds ("%d.%03d").
func usec(t sim.Time) string {
	n := int64(t)
	return fmt.Sprintf("%d.%03d", n/1000, n%1000)
}

// jsonStr escapes s as a JSON string literal.
func jsonStr(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Encode implements Encoder.
func (PerfettoEncoder) Encode(w io.Writer, d *Dump) error {
	tids := catTracks(d.Events)
	cats := make([]string, 0, len(tids))
	for c := range tids {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	emit(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"psbox"}}`)
	for _, c := range cats {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			tids[c], jsonStr(c)))
	}
	for _, ev := range d.Events {
		name := ev.Kind
		if ev.Name != "" {
			name = ev.Kind + " " + ev.Name
		}
		owner := d.Owners[ev.Owner]
		if ev.Owner == 0 {
			owner = "kernel"
		} else if owner == "" {
			owner = fmt.Sprintf("app%d", ev.Owner)
		}
		args := fmt.Sprintf(`{"seq":%d,"owner":%s,"arg":%d,"rail":%s}`,
			ev.Seq, jsonStr(owner), ev.Arg, jsonStr(ev.Rail))
		if ev.Type == TypeSpan {
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":%s}`,
				jsonStr(name), jsonStr(ev.Cat), usec(ev.T), usec(sim.Time(ev.End.Sub(ev.T))), tids[ev.Cat], args))
			continue
		}
		emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,"args":%s}`,
			jsonStr(name), jsonStr(ev.Cat), usec(ev.T), tids[ev.Cat], args))
	}
	fmt.Fprintf(&b, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":%d,\"total_events\":%d}}\n",
		d.Dropped, d.Total)
	_, err := io.WriteString(w, b.String())
	return err
}

// CSVEncoder writes one row per event with a fixed header, for external
// analysis (pandas, duckdb, gnuplot).
type CSVEncoder struct{}

// csvField quotes a field only when it needs it, keeping output stable.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Encode implements Encoder.
func (CSVEncoder) Encode(w io.Writer, d *Dump) error {
	if _, err := fmt.Fprintln(w, "seq,type,cat,kind,start_ns,end_ns,owner,owner_name,arg,rail,name"); err != nil {
		return err
	}
	for _, ev := range d.Events {
		owner := d.Owners[ev.Owner]
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d,%d,%s,%d,%s,%s\n",
			ev.Seq, ev.Type, csvField(ev.Cat), csvField(ev.Kind),
			int64(ev.T), int64(ev.End), ev.Owner, csvField(owner),
			ev.Arg, csvField(ev.Rail), csvField(ev.Name)); err != nil {
			return err
		}
	}
	if d.Dropped > 0 {
		if _, err := fmt.Fprintf(w, "# WARNING: trace ring dropped %d events (oldest first)\n", d.Dropped); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIEncoder reworks the existing ASCII renderers over the event
// stream: spans become a trace.Gantt (one lane per category), instants a
// stable per-category/kind tally.
type ASCIIEncoder struct {
	// Width is the chart width in cells; <= 0 means 72.
	Width int
}

// Encode implements Encoder.
func (e ASCIIEncoder) Encode(w io.Writer, d *Dump) error {
	width := e.Width
	if width <= 0 {
		width = 72
	}
	g := trace.NewGantt()
	var from, to sim.Time
	spans := 0
	tally := make(map[string]int)
	for _, ev := range d.Events {
		if ev.End > to {
			to = ev.End
		}
		if ev.Type == TypeSpan {
			label := ev.Name
			if label == "" {
				label = ev.Kind
			}
			g.Add(ev.Cat, label, ev.T, ev.End)
			spans++
			continue
		}
		tally[ev.Cat+"/"+ev.Kind]++
	}
	if _, err := fmt.Fprintf(w, "psbox trace: %d events retained (%d spans), %d dropped\n",
		len(d.Events), spans, d.Dropped); err != nil {
		return err
	}
	if d.Dropped > 0 {
		if _, err := fmt.Fprintf(w, "WARNING: trace ring dropped %d events (oldest first)\n", d.Dropped); err != nil {
			return err
		}
	}
	if spans > 0 {
		if _, err := io.WriteString(w, g.Render(from, to, width)); err != nil {
			return err
		}
	}
	kinds := make([]string, 0, len(tally))
	for k := range tally {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "%6d × %s\n", tally[k], k); err != nil {
			return err
		}
	}
	return nil
}
