// Package profile is psbox's sim-time energy profiler: it folds power
// attribution (blame windows) against the trace's activity spans into a
// weighted stack tree — app → component → rail — whose weights are
// joules. Where the blame timeline answers "who drew this sample's
// power", the profile answers "where did each principal's energy go over
// the whole run", in a form flamegraph tooling already understands
// (collapsed-stack lines) plus a deterministic top-N table.
//
// The profiler follows the trace bus's discipline exactly: it is free
// when off (every fold checks the enabled flag first and a disabled
// profiler allocates and mutates nothing), it reads only simulated
// quantities (meter samples, trace spans, dropout gaps — never host
// state), and it snapshots like any other stateful layer so a profile
// survives crash-and-resume byte-for-byte (DESIGN.md §"Fleet
// observability").
package profile

import (
	"fmt"
	"io"
	"sort"

	"psbox/internal/hw/power"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// Key addresses one stack in the weighted tree: the owning app, the
// component that was active (the trace category: sched, accel, net, ...),
// and the power rail the energy was drawn from.
type Key struct {
	App  string
	Comp string
	Rail string
}

// Entry is one stack with its accumulated weight, the portable form the
// fleet rollup merges across shards.
type Entry struct {
	App  string
	Comp string
	Rail string
	J    float64
}

// IdleApp and IdleComp label the uncovered remainder of a sample window —
// floor power no span explains. Owner-0 (kernel) spans keep their real
// component; only the truly unattributed residue lands here.
const (
	IdleApp  = "idle"
	IdleComp = "floor"
)

// Profiler accumulates the folded tree. Like the trace bus it is disabled
// by default; Enable arms it (stickily — see Armed) and every folding
// entry point checks the flag first, so an idle profiler costs one branch
// and changes nothing observable.
type Profiler struct {
	enabled  bool
	armed    bool // sticky: set by the first Enable, never cleared
	through  sim.Time
	windows  uint64 // blame windows folded
	degraded uint64 // folded windows overlapping a dropout gap
	weights  map[Key]float64
}

// New returns a disabled profiler.
func New() *Profiler {
	return &Profiler{weights: make(map[Key]float64)}
}

// Enable turns folding on.
func (p *Profiler) Enable() {
	p.enabled = true
	p.armed = true
}

// Disable turns folding off; accumulated weights stay.
func (p *Profiler) Disable() { p.enabled = false }

// Enabled reports whether the profiler is folding.
func (p *Profiler) Enabled() bool { return p != nil && p.enabled }

// Armed reports whether the profiler has ever been enabled. The system
// checkpoint includes the profiler's section exactly when it is armed, so
// scenarios that never profile keep their historical checkpoint bytes.
func (p *Profiler) Armed() bool { return p != nil && p.armed }

// Through is the fold watermark: everything before it has been folded.
// Callers fold [Through, now) and then Advance, so repeated folds never
// double-count a window.
func (p *Profiler) Through() sim.Time { return p.through }

// Advance moves the watermark forward (never back).
func (p *Profiler) Advance(to sim.Time) {
	if to > p.through {
		p.through = to
	}
}

// Windows reports how many blame windows have been folded.
func (p *Profiler) Windows() uint64 {
	if p == nil {
		return 0
	}
	return p.windows
}

// Degraded reports how many folded windows overlapped a meter dropout.
func (p *Profiler) Degraded() uint64 {
	if p == nil {
		return 0
	}
	return p.degraded
}

// ownerComp identifies one (owner, component) occupant within a window.
type ownerComp struct {
	owner int
	comp  string
}

// FoldRail folds one rail's samples against the trace's span events: each
// sample window [T, T+period) is split among the (owner, component)
// pairs active in it — occupancy fraction scaled by coverage, exactly the
// obs.Attribute arithmetic, but keyed one level deeper so the tree
// separates an app's scheduler time from its accelerator commands — and
// the uncovered remainder is booked to the idle floor. Each share times
// the sampled watts times the period is the window's energy contribution.
//
// events is the full trace; FoldRail selects the spans on rail itself.
// ownerName maps owner IDs to app names (owner 0 is conventionally
// "kernel"). The fold is a no-op while the profiler is disabled.
func (p *Profiler) FoldRail(rail string, samples []power.Sample, period sim.Duration,
	events []obs.Event, gaps []obs.Gap, ownerName func(int) string) {
	if p == nil || !p.enabled {
		return
	}
	if period <= 0 {
		panic("profile: fold needs a positive sample period")
	}
	type span struct {
		start, end sim.Time
		oc         ownerComp
	}
	var spans []span
	for _, ev := range events {
		if ev.Type != obs.TypeSpan || ev.Rail != rail {
			continue
		}
		spans = append(spans, span{start: ev.T, end: ev.End, oc: ownerComp{ev.Owner, ev.Cat}})
	}
	for _, s := range samples {
		lo, hi := s.T, s.T.Add(period)
		window := hi.Sub(lo)
		occ := make(map[ownerComp]sim.Duration)
		var clipped []obs.Interval
		var total sim.Duration
		for _, sp := range spans {
			a, b := sp.start, sp.end
			if a < lo {
				a = lo
			}
			if b > hi {
				b = hi
			}
			if b <= a {
				continue
			}
			occ[sp.oc] += b.Sub(a)
			total += b.Sub(a)
			clipped = append(clipped, obs.Interval{Start: a, End: b, Owner: sp.oc.owner})
		}
		covered := coverage(clipped)
		joules := float64(s.W) * period.Seconds()
		p.windows++
		if overlapsGap(lo, hi, gaps) {
			p.degraded++
		}

		// Occupants in sorted (owner, comp) order: every key's float
		// accumulation sequence is fixed by sim time and this order, never
		// by map iteration.
		ocs := make([]ownerComp, 0, len(occ))
		for oc := range occ {
			ocs = append(ocs, oc)
		}
		sort.Slice(ocs, func(i, j int) bool {
			if ocs[i].owner != ocs[j].owner {
				return ocs[i].owner < ocs[j].owner
			}
			return ocs[i].comp < ocs[j].comp
		})
		activeFrac := float64(covered) / float64(window)
		for _, oc := range ocs {
			frac := float64(occ[oc]) / float64(total) * activeFrac
			p.weights[Key{App: ownerName(oc.owner), Comp: oc.comp, Rail: rail}] += frac * joules
		}
		if idle := float64(window-covered) / float64(window); idle > 0 {
			p.weights[Key{App: IdleApp, Comp: IdleComp, Rail: rail}] += idle * joules
		}
	}
}

// coverage measures the merged extent of intervals already clipped to one
// window (the union arithmetic of the attribution joiner).
func coverage(ivs []obs.Interval) sim.Duration {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Start != ivs[j].Start {
			return ivs[i].Start < ivs[j].Start
		}
		return ivs[i].End < ivs[j].End
	})
	var d sim.Duration
	curA, curB := ivs[0].Start, ivs[0].End
	for _, iv := range ivs[1:] {
		if iv.Start > curB {
			d += curB.Sub(curA)
			curA, curB = iv.Start, iv.End
			continue
		}
		if iv.End > curB {
			curB = iv.End
		}
	}
	return d + curB.Sub(curA)
}

func overlapsGap(lo, hi sim.Time, gaps []obs.Gap) bool {
	for _, g := range gaps {
		if g.From < hi && g.To > lo {
			return true
		}
	}
	return false
}

// Entries returns the folded tree in canonical (App, Comp, Rail) order.
func (p *Profiler) Entries() []Entry {
	if p == nil {
		return nil
	}
	keys := make([]Key, 0, len(p.weights))
	for k := range p.weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Comp != b.Comp {
			return a.Comp < b.Comp
		}
		return a.Rail < b.Rail
	})
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, Entry{App: k.App, Comp: k.Comp, Rail: k.Rail, J: p.weights[k]})
	}
	return out
}

// SortEntries orders entries canonically by (App, Comp, Rail).
func SortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Comp != b.Comp {
			return a.Comp < b.Comp
		}
		return a.Rail < b.Rail
	})
}

// MergeEntries folds several entry lists (e.g. per-shard profiles, in
// ascending shard-ID order) into one canonical list. Identical keys sum;
// the input order fixes the float summation order.
func MergeEntries(lists ...[]Entry) []Entry {
	sums := make(map[Key]float64)
	var order []Key
	for _, list := range lists {
		for _, e := range list {
			k := Key{App: e.App, Comp: e.Comp, Rail: e.Rail}
			if _, ok := sums[k]; !ok {
				order = append(order, k)
			}
			sums[k] += e.J
		}
	}
	out := make([]Entry, 0, len(order))
	for _, k := range order {
		out = append(out, Entry{App: k.App, Comp: k.Comp, Rail: k.Rail, J: sums[k]})
	}
	SortEntries(out)
	return out
}

// WriteFolded writes flamegraph-collapsed stacks, one line per stack:
// "app;component;rail <weight>", weight in whole microjoules (rounded).
// Feed it to flamegraph.pl / inferno / speedscope unchanged. Stacks that
// round to zero microjoules are skipped — they would render as invisible
// one-sample frames.
func WriteFolded(w io.Writer, entries []Entry) error {
	for _, e := range entries {
		uj := int64(e.J*1e6 + 0.5)
		if uj <= 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s;%s;%s %d\n", e.App, e.Comp, e.Rail, uj); err != nil {
			return err
		}
	}
	return nil
}

// WriteTop renders the heaviest n stacks as a deterministic table: sorted
// by joules descending, ties broken by (App, Comp, Rail) ascending, with
// each stack's share of the profiled total.
func WriteTop(w io.Writer, entries []Entry, n int) error {
	var total float64
	for _, e := range entries {
		total += e.J
	}
	ranked := append([]Entry(nil), entries...)
	SortEntries(ranked) // canonical order first, so the descending sort's ties are fixed
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].J > ranked[j].J })
	if n > len(ranked) {
		n = len(ranked)
	}
	if _, err := fmt.Fprintf(w, "# energy profile top-%d of %d stacks, total %.9f J\n",
		n, len(ranked), total); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		e := ranked[i]
		share := 0.0
		if total > 0 {
			share = e.J / total
		}
		if _, err := fmt.Fprintf(w, "%3d  %-12s %-10s %-8s %14.9f J  %6.2f%%\n",
			i+1, e.App, e.Comp, e.Rail, e.J, 100*share); err != nil {
			return err
		}
	}
	return nil
}
