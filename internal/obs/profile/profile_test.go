package profile

import (
	"strings"
	"testing"

	"psbox/internal/hw/power"
	"psbox/internal/obs"
	"psbox/internal/sim"
	"psbox/internal/snapshot"
)

const ms = sim.Millisecond

func name(owner int) string {
	if owner == 0 {
		return "kernel"
	}
	return map[int]string{1: "vision", 2: "maps"}[owner]
}

// testFold runs one canonical fold: a 10ms window at 2W with vision
// running sched for the first half, maps running accel for the last
// quarter, and the rest uncovered.
func testFold(p *Profiler) {
	samples := []power.Sample{{T: 0, W: 2.0}}
	events := []obs.Event{
		{Type: obs.TypeSpan, T: 0, End: sim.Time(5 * ms), Cat: obs.CatSched, Owner: 1, Rail: "cpu"},
		{Type: obs.TypeSpan, T: sim.Time(7500 * sim.Microsecond), End: sim.Time(10 * ms),
			Cat: obs.CatAccel, Owner: 2, Rail: "cpu"},
		// A different rail's span must be ignored by a cpu fold.
		{Type: obs.TypeSpan, T: 0, End: sim.Time(10 * ms), Cat: obs.CatAccel, Owner: 2, Rail: "gpu"},
	}
	p.FoldRail("cpu", samples, 10*ms, events, nil, name)
}

func TestFoldRailSplitsEnergy(t *testing.T) {
	p := New()
	p.Enable()
	testFold(p)

	// 2W over 10ms = 0.02 J. Coverage is 7.5ms of 10ms, so the active
	// fraction is 0.75; vision holds 5ms of 7.5ms occupancy, maps 2.5ms.
	want := map[Key]float64{
		{App: "vision", Comp: obs.CatSched, Rail: "cpu"}: 0.02 * 0.75 * (5.0 / 7.5),
		{App: "maps", Comp: obs.CatAccel, Rail: "cpu"}:   0.02 * 0.75 * (2.5 / 7.5),
		{App: IdleApp, Comp: IdleComp, Rail: "cpu"}:      0.02 * 0.25,
	}
	es := p.Entries()
	if len(es) != len(want) {
		t.Fatalf("entries = %+v, want %d stacks", es, len(want))
	}
	var sum float64
	for _, e := range es {
		w := want[Key{App: e.App, Comp: e.Comp, Rail: e.Rail}]
		if diff := e.J - w; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s;%s;%s = %v, want %v", e.App, e.Comp, e.Rail, e.J, w)
		}
		sum += e.J
	}
	if diff := sum - 0.02; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("profile total %v J, want the window's full 0.02 J", sum)
	}
	if p.Windows() != 1 || p.Degraded() != 0 {
		t.Errorf("windows=%d degraded=%d, want 1/0", p.Windows(), p.Degraded())
	}
}

// A disabled profiler folds nothing — the free-when-off contract.
func TestFoldDisabledIsNoOp(t *testing.T) {
	p := New()
	testFold(p)
	if len(p.Entries()) != 0 || p.Windows() != 0 {
		t.Fatalf("disabled profiler accumulated state: %+v", p.Entries())
	}
	if p.Armed() {
		t.Fatal("never-enabled profiler reports armed")
	}
	p.Enable()
	p.Disable()
	if !p.Armed() {
		t.Fatal("armed flag must be sticky across Disable")
	}
}

func TestFoldCountsDegradedWindows(t *testing.T) {
	p := New()
	p.Enable()
	samples := []power.Sample{{T: 0, W: 1}, {T: sim.Time(10 * ms), W: 1}}
	gaps := []obs.Gap{{From: sim.Time(12 * ms), To: sim.Time(15 * ms)}}
	p.FoldRail("cpu", samples, 10*ms, nil, gaps, name)
	if p.Windows() != 2 || p.Degraded() != 1 {
		t.Fatalf("windows=%d degraded=%d, want 2/1", p.Windows(), p.Degraded())
	}
}

func TestAdvanceWatermarkMonotone(t *testing.T) {
	p := New()
	p.Advance(sim.Time(50 * ms))
	p.Advance(sim.Time(20 * ms))
	if got := p.Through(); got != sim.Time(50*ms) {
		t.Fatalf("watermark = %v, want 50ms (never moves back)", got)
	}
}

func TestMergeEntriesSumsAndSorts(t *testing.T) {
	a := []Entry{
		{App: "vision", Comp: "sched", Rail: "cpu", J: 0.5},
		{App: "idle", Comp: "floor", Rail: "cpu", J: 0.1},
	}
	b := []Entry{
		{App: "vision", Comp: "sched", Rail: "cpu", J: 0.25},
		{App: "maps", Comp: "net", Rail: "wifi", J: 0.05},
	}
	m := MergeEntries(a, b)
	want := []Entry{
		{App: "idle", Comp: "floor", Rail: "cpu", J: 0.1},
		{App: "maps", Comp: "net", Rail: "wifi", J: 0.05},
		{App: "vision", Comp: "sched", Rail: "cpu", J: 0.75},
	}
	if len(m) != len(want) {
		t.Fatalf("merged = %+v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("merged[%d] = %+v, want %+v", i, m[i], want[i])
		}
	}
}

func TestWriteFoldedFormat(t *testing.T) {
	entries := []Entry{
		{App: "idle", Comp: "floor", Rail: "cpu", J: 0.005},
		{App: "maps", Comp: "accel", Rail: "gpu", J: 1e-9}, // rounds to 0 µJ: skipped
		{App: "vision", Comp: "sched", Rail: "cpu", J: 0.0100004},
	}
	var sb strings.Builder
	if err := WriteFolded(&sb, entries); err != nil {
		t.Fatal(err)
	}
	want := "idle;floor;cpu 5000\nvision;sched;cpu 10000\n"
	if sb.String() != want {
		t.Fatalf("folded stacks:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWriteTopRanksAndTiesDeterministically(t *testing.T) {
	entries := []Entry{
		{App: "b", Comp: "x", Rail: "cpu", J: 0.5},
		{App: "a", Comp: "x", Rail: "cpu", J: 0.5}, // tie: "a" must rank before "b"
		{App: "c", Comp: "y", Rail: "gpu", J: 2.0},
	}
	var sb strings.Builder
	if err := WriteTop(&sb, entries, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("top table:\n%s", sb.String())
	}
	if !strings.Contains(lines[0], "top-2 of 3 stacks, total 3.000000000 J") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "c") || !strings.Contains(lines[1], "66.67%") {
		t.Errorf("rank 1: %s", lines[1])
	}
	if fields := strings.Fields(lines[2]); fields[1] != "a" {
		t.Errorf("rank 2 tie should be 'a' first: %s", lines[2])
	}
}

// Two identical fold sequences must produce byte-identical snapshots, and
// Restore against the twin verifies clean.
func TestSnapshotRoundTrip(t *testing.T) {
	mk := func() *Profiler {
		p := New()
		p.Enable()
		testFold(p)
		p.Advance(sim.Time(10 * ms))
		return p
	}
	a, b := mk(), mk()
	ea, eb := snapshot.NewEncoder(), snapshot.NewEncoder()
	a.Snapshot(ea)
	b.Snapshot(eb)
	ba, bb := ea.Data(), eb.Data()
	if string(ba) != string(bb) {
		t.Fatal("identical folds produced different snapshot bytes")
	}
	if err := b.Restore(snapshot.NewDecoder(ba)); err != nil {
		t.Fatalf("twin restore: %v", err)
	}
	// A diverged twin must be rejected.
	b.weights[Key{App: "vision", Comp: "sched", Rail: "cpu"}] += 1e-6
	if err := b.Restore(snapshot.NewDecoder(ba)); err == nil {
		t.Fatal("diverged profiler passed snapshot verification")
	}
}
