package profile

import (
	"sort"

	"psbox/internal/snapshot"
)

// Snapshot encodes the profiler canonically: flags, the fold watermark,
// window accounting, and the weighted tree in sorted key order. Profiles
// survive crash-and-resume under the replay-twin contract — the resumed
// run re-folds the same windows, and Restore's byte comparison proves
// the trees match.
func (p *Profiler) Snapshot(enc *snapshot.Encoder) {
	enc.Bool(p.enabled)
	enc.Bool(p.armed)
	enc.I64(int64(p.through))
	enc.U64(p.windows)
	enc.U64(p.degraded)

	keys := make([]Key, 0, len(p.weights))
	for k := range p.weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Comp != b.Comp {
			return a.Comp < b.Comp
		}
		return a.Rail < b.Rail
	})
	enc.Len(len(keys))
	for _, k := range keys {
		enc.Str(k.App)
		enc.Str(k.Comp)
		enc.Str(k.Rail)
		enc.F64(p.weights[k])
	}
}

// Restore verifies the live profiler against a checkpoint section, per
// the replay-twin contract.
func (p *Profiler) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, p.Snapshot) }
