package obs

import (
	"testing"

	"psbox/internal/sim"
)

func TestHistQuantileEmpty(t *testing.T) {
	var h *Hist
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("nil hist quantile = %v, want 0", got)
	}
	h = &Hist{}
	if got := h.P50(); got != 0 {
		t.Fatalf("empty hist p50 = %v, want 0", got)
	}
}

// One observation: every quantile lands in its bucket, interpolated from
// the bucket's lower bound.
func TestHistQuantileSingleObservation(t *testing.T) {
	h := &Hist{}
	h.Observe(5 * sim.Millisecond) // le10ms bucket: (1ms, 10ms]
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if got <= sim.Millisecond || got > 10*sim.Millisecond {
			t.Errorf("q=%v: %v outside the observation's bucket (1ms, 10ms]", q, got)
		}
	}
}

// A uniform spread over known buckets: the quantiles must walk the
// cumulative counts in order and interpolate within the right bucket.
func TestHistQuantileSpread(t *testing.T) {
	h := &Hist{}
	// 90 observations in le10us, 9 in le10ms, 1 in le1s.
	for i := 0; i < 90; i++ {
		h.Observe(5 * sim.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(5 * sim.Millisecond)
	}
	h.Observe(500 * sim.Millisecond)

	if got := h.P50(); got > 10*sim.Microsecond {
		t.Errorf("p50 = %v, want within the le10us bucket", got)
	}
	p95 := h.P95()
	if p95 <= sim.Millisecond || p95 > 10*sim.Millisecond {
		t.Errorf("p95 = %v, want within (1ms, 10ms]", p95)
	}
	// Rank 99 of 100 is still the last le10ms observation; the estimate
	// may sit on the bucket's closed upper bound.
	p99 := h.P99()
	if p99 <= sim.Millisecond || p99 > 10*sim.Millisecond {
		t.Errorf("p99 = %v, want within (1ms, 10ms]", p99)
	}
	// The max (q=1) reaches the le1s bucket.
	if got := h.Quantile(1); got <= 10*sim.Millisecond || got > sim.Second {
		t.Errorf("q=1 = %v, want within (10ms, 1s]", got)
	}
	// Quantiles are monotone in q.
	last := sim.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, last)
		}
		last = v
	}
}

// Observations beyond the last finite bound clamp to it: bucketed
// quantiles never invent values above what the histogram can resolve.
func TestHistQuantileInfBucketClamps(t *testing.T) {
	h := &Hist{}
	for i := 0; i < 4; i++ {
		h.Observe(10 * sim.Second) // +Inf bucket
	}
	if got := h.P99(); got != sim.Second {
		t.Fatalf("p99 in +Inf bucket = %v, want clamp to 1s", got)
	}
}

// Out-of-range q values clamp instead of misbehaving.
func TestHistQuantileClampsQ(t *testing.T) {
	h := &Hist{}
	h.Observe(5 * sim.Microsecond)
	if a, b := h.Quantile(-1), h.Quantile(0); a != b {
		t.Errorf("q=-1 (%v) != q=0 (%v)", a, b)
	}
	if a, b := h.Quantile(2), h.Quantile(1); a != b {
		t.Errorf("q=2 (%v) != q=1 (%v)", a, b)
	}
}

// Merging shard histograms bucket-wise equals observing everything into
// one histogram — the property the fleet rollup's distributions rely on.
func TestHistMergeEqualsCombinedObservation(t *testing.T) {
	a, b, all := &Hist{}, &Hist{}, &Hist{}
	durs := []sim.Duration{
		3 * sim.Microsecond, 40 * sim.Microsecond, 700 * sim.Microsecond,
		2 * sim.Millisecond, 80 * sim.Millisecond, 900 * sim.Millisecond, 3 * sim.Second,
	}
	for i, d := range durs {
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		all.Observe(d)
	}
	merged := &Hist{}
	merged.Merge(a)
	merged.Merge(b)
	merged.Merge(nil) // no-op
	if *merged != *all {
		t.Fatalf("merged %+v != combined %+v", merged, all)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if merged.Quantile(q) != all.Quantile(q) {
			t.Fatalf("quantile %v differs after merge", q)
		}
	}
}
