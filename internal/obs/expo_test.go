package obs

import (
	"strings"
	"testing"

	"psbox/internal/sim"
)

// testDump builds a small two-shard-flavoured dump pair for merge and
// exposition tests.
func testDump(t *testing.T) (*MetricsDump, *MetricsDump) {
	t.Helper()
	mk := func(seed int64) *MetricsDump {
		b := NewBus(sim.NewEngine(), 8)
		b.NameOwner(1, "vision")
		b.Enable()
		b.Count("sched.switches", 1, "cpu", 10+seed)
		b.Count("obs.custom", 0, "", seed)
		b.Gauge("dvfs.freq_mhz", 0, "cpu", float64(600*seed))
		b.Observe("accel.latency", 1, "gpu", sim.Duration(seed)*sim.Millisecond)
		b.Instant(CatSim, "tick", 0, 0, "", "")
		return b.DumpMetrics()
	}
	return mk(1), mk(2)
}

func TestDumpMergeSumsDeterministically(t *testing.T) {
	a, b := testDump(t)
	m := NewMetricsDump()
	m.Merge(a)
	m.Merge(b)
	if got := m.Counters[Key{"sched.switches", 1, "cpu"}]; got != 23 {
		t.Errorf("merged counter = %d, want 23", got)
	}
	if got := m.Gauges[Key{"dvfs.freq_mhz", 0, "cpu"}]; got != 1800 {
		t.Errorf("merged gauge = %v, want 1800", got)
	}
	h := m.Hists[Key{"accel.latency", 1, "gpu"}]
	if h == nil || h.Count != 2 || h.Sum != 3*sim.Millisecond {
		t.Errorf("merged hist = %+v", h)
	}
	if m.Events != a.Events+b.Events {
		t.Errorf("merged events = %d", m.Events)
	}
	if m.Owners[1] != "vision" {
		t.Errorf("owner table lost: %v", m.Owners)
	}

	// A dump renders through the same canonical writer as a live bus.
	var s1, s2 strings.Builder
	if err := m.Write(&s1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("dump render not stable")
	}
	if !strings.Contains(s1.String(), "counter sched.switches") {
		t.Fatalf("merged report missing series:\n%s", s1.String())
	}
}

// DumpMetrics is a snapshot: later bus activity must not leak into it.
func TestDumpIsImmuneToLaterBusActivity(t *testing.T) {
	b := NewBus(sim.NewEngine(), 8)
	b.Enable()
	b.Count("c", 0, "", 1)
	b.Observe("h", 0, "", sim.Millisecond)
	d := b.DumpMetrics()
	b.Count("c", 0, "", 100)
	b.Observe("h", 0, "", sim.Second)
	if d.Counters[Key{"c", 0, ""}] != 1 {
		t.Error("counter leaked into dump")
	}
	if d.Hists[Key{"h", 0, ""}].Count != 1 {
		t.Error("histogram leaked into dump")
	}
}

func TestWriteProm(t *testing.T) {
	a, _ := testDump(t)
	var sb strings.Builder
	if err := a.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "# TYPE psbox_obs_custom counter\n" +
		"psbox_obs_custom 1\n" +
		"# TYPE psbox_sched_switches counter\n" +
		"psbox_sched_switches{owner=\"vision\",rail=\"cpu\"} 11\n" +
		"# TYPE psbox_dvfs_freq_mhz gauge\n" +
		"psbox_dvfs_freq_mhz{rail=\"cpu\"} 600\n" +
		"# TYPE psbox_accel_latency histogram\n" +
		"psbox_accel_latency_bucket{owner=\"vision\",rail=\"gpu\",le=\"1e-05\"} 0\n" +
		"psbox_accel_latency_bucket{owner=\"vision\",rail=\"gpu\",le=\"0.0001\"} 0\n" +
		"psbox_accel_latency_bucket{owner=\"vision\",rail=\"gpu\",le=\"0.001\"} 1\n" +
		"psbox_accel_latency_bucket{owner=\"vision\",rail=\"gpu\",le=\"0.01\"} 1\n" +
		"psbox_accel_latency_bucket{owner=\"vision\",rail=\"gpu\",le=\"0.1\"} 1\n" +
		"psbox_accel_latency_bucket{owner=\"vision\",rail=\"gpu\",le=\"1\"} 1\n" +
		"psbox_accel_latency_bucket{owner=\"vision\",rail=\"gpu\",le=\"+Inf\"} 1\n" +
		"psbox_accel_latency_sum{owner=\"vision\",rail=\"gpu\"} 0.001\n" +
		"psbox_accel_latency_count{owner=\"vision\",rail=\"gpu\"} 1\n" +
		"# TYPE psbox_obs_events_total counter\n" +
		"psbox_obs_events_total 1\n" +
		"# TYPE psbox_obs_dropped_events_total counter\n" +
		"psbox_obs_dropped_events_total 0\n"
	if got != want {
		t.Fatalf("prom exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"obs.events_total": "psbox_obs_events_total",
		"a-b c/d":          "psbox_a_b_c_d",
		"plain":            "psbox_plain",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromLabelEscaping(t *testing.T) {
	d := NewMetricsDump()
	d.Owners[1] = "we\"ird\\app"
	d.Counters[Key{"c", 1, ""}] = 1
	var sb strings.Builder
	if err := d.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `owner="we\"ird\\app"`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}
