package obs

import (
	"testing"

	"psbox/internal/sim"
	"psbox/internal/snapshot"
)

func newEnabled(t *testing.T, capacity int) (*sim.Engine, *Bus) {
	t.Helper()
	eng := sim.NewEngine()
	b := NewBus(eng, capacity)
	b.Enable()
	return eng, b
}

func TestRingDropsOldestWithExactAccounting(t *testing.T) {
	_, b := newEnabled(t, 4)
	for i := 0; i < 6; i++ {
		b.Instant(CatSim, "tick", 0, int64(i), "", "")
	}
	if got := b.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := b.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	if got := b.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	evs := b.Events()
	// Seq is gap-free even across drops: the retained window is 3..6.
	for i, ev := range evs {
		if want := uint64(i + 3); ev.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, want)
		}
		if want := int64(i + 2); ev.Arg != want {
			t.Errorf("event %d: Arg = %d, want %d", i, ev.Arg, want)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	_, b := newEnabled(t, 0)
	if b.Capacity() != DefaultCapacity {
		t.Fatalf("Capacity = %d, want %d", b.Capacity(), DefaultCapacity)
	}
}

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	b.Instant(CatSim, "tick", 0, 0, "", "")
	b.Span(CatSched, "run", 1, 0, "cpu", "task", 0)
	b.Count("x", 0, "", 1)
	b.Gauge("x", 0, "", 1)
	b.Observe("x", 0, "", sim.Millisecond)
	b.NameOwner(1, "app")
	if b.Enabled() || b.Len() != 0 || b.Total() != 0 || b.Dropped() != 0 {
		t.Fatal("nil bus should observe nothing")
	}
	if b.OwnerName(1) != "" || b.Counter("x", 0, "") != 0 ||
		b.GaugeValue("x", 0, "") != 0 || b.Histogram("x", 0, "") != nil {
		t.Fatal("nil bus readers should return zero values")
	}
	if d := b.Dump(); len(d.Events) != 0 || d.Total != 0 {
		t.Fatal("nil bus dump should be empty")
	}
}

func TestDisabledBusRecordsNothing(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBus(eng, 8)
	b.Instant(CatSim, "tick", 0, 0, "", "")
	b.Count("x", 0, "", 1)
	b.Observe("x", 0, "", sim.Millisecond)
	if b.Total() != 0 || b.Counter("x", 0, "") != 0 || b.Histogram("x", 0, "") != nil {
		t.Fatal("disabled bus should record nothing")
	}
	// Owner naming still lands: app creation precedes EnableTracing.
	b.NameOwner(1, "early")
	if b.OwnerName(1) != "early" {
		t.Fatal("owner naming should work while disabled")
	}
	b.Enable()
	b.Instant(CatSim, "tick", 0, 0, "", "")
	if b.Total() != 1 {
		t.Fatal("enabled bus should record")
	}
	b.Disable()
	b.Instant(CatSim, "tick", 0, 0, "", "")
	if b.Total() != 1 || b.Len() != 1 {
		t.Fatal("disable should stop emission but keep retained events")
	}
}

func TestSpanAndInstantStamps(t *testing.T) {
	eng, b := newEnabled(t, 8)
	start := eng.Now()
	eng.At(sim.Time(5*sim.Millisecond), func(sim.Time) {
		b.Span(CatSched, "run", 2, 7, "cpu", "taskA", start)
		b.Instant(CatDVFS, "freq-change", 0, 1, "cpu", "cpu")
	})
	eng.RunFor(10 * sim.Millisecond)
	evs := b.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	sp := evs[0]
	if sp.Type != TypeSpan || sp.T != 0 || sp.End != sim.Time(5*sim.Millisecond) {
		t.Fatalf("span stamped %v..%v type=%v", sp.T, sp.End, sp.Type)
	}
	in := evs[1]
	if in.Type != TypeInstant || in.T != in.End || in.T != sim.Time(5*sim.Millisecond) {
		t.Fatalf("instant stamped %v..%v", in.T, in.End)
	}
}

// fill drives one bus through a fixed emission schedule.
func fill(b *Bus, extra bool) {
	b.NameOwner(1, "vision#1")
	b.NameOwner(2, "stream#2")
	b.Enable()
	for i := 0; i < 10; i++ {
		b.Instant(CatSched, "switch", 1+i%2, int64(i), "cpu", "t")
		b.Span(CatAccel, "exec", 1, int64(i), "gpu", "frame", 0)
	}
	b.Count("sched.ctx_switches", 0, "cpu", 10)
	b.Gauge("dvfs.freq_mhz", 0, "cpu", 600)
	b.Observe("sched.wake_latency", 1, "", 3*sim.Millisecond)
	if extra {
		b.Instant(CatFault, "nic-flap", 0, 0, "", "wifi")
	}
}

func TestSnapshotVerifiesReplayTwin(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBus(eng, 8) // small ring: exercises drop accounting in the snapshot
	fill(b, false)

	reg := snapshot.NewRegistry()
	reg.Add("obs", b)
	data := reg.Checkpoint()

	// A replay twin — same construction, same emissions — verifies.
	twin := NewBus(sim.NewEngine(), 8)
	fill(twin, false)
	reg2 := snapshot.NewRegistry()
	reg2.Add("obs", twin)
	if err := reg2.Restore(data); err != nil {
		t.Fatalf("replay twin should verify: %v", err)
	}

	// A diverged twin — one extra event — must be rejected.
	diverged := NewBus(sim.NewEngine(), 8)
	fill(diverged, true)
	reg3 := snapshot.NewRegistry()
	reg3.Add("obs", diverged)
	if err := reg3.Restore(data); err == nil {
		t.Fatal("diverged twin should fail verification")
	}
}
