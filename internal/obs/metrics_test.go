package obs

import (
	"strings"
	"testing"

	"psbox/internal/sim"
)

func TestWriteMetricsCanonical(t *testing.T) {
	b := NewBus(sim.NewEngine(), 8)
	b.NameOwner(1, "vision#1")
	b.Enable()
	// Insert out of order; the report must come out sorted.
	b.Count("z.last", 0, "", 2)
	b.Count("a.first", 1, "cpu", 3)
	b.Count("a.first", 1, "cpu", 4)
	b.Gauge("dvfs.freq_mhz", 0, "cpu", 1500)
	b.Gauge("dvfs.freq_mhz", 0, "cpu", 600) // latest wins
	b.Observe("lat", 1, "", 5*sim.Microsecond)
	b.Observe("lat", 1, "", 2*sim.Millisecond)
	b.Instant(CatSim, "tick", 0, 0, "", "")

	var sb strings.Builder
	if err := b.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "# psbox metrics\n" +
		"counter a.first                            owner=1:vision#1     rail=cpu      7\n" +
		"counter z.last                             owner=-              rail=-        2\n" +
		"gauge   dvfs.freq_mhz                      owner=-              rail=cpu      600\n" +
		"hist    lat                                owner=1:vision#1     rail=-        count=2 sum=2.005ms le10us=1 le100us=0 le1ms=0 le10ms=1 le100ms=0 le1s=0 le+inf=0\n" +
		"counter obs.events_total                   owner=-              rail=-        1\n" +
		"counter obs.dropped_events                 owner=-              rail=-        0\n"
	if got != want {
		t.Fatalf("metrics report:\n%s\nwant:\n%s", got, want)
	}

	// Repeated renders are byte-identical.
	var sb2 strings.Builder
	if err := b.WriteMetrics(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != got {
		t.Fatal("metrics report not stable across renders")
	}
}

func TestWriteMetricsDropWarning(t *testing.T) {
	b := NewBus(sim.NewEngine(), 2)
	b.Enable()
	for i := 0; i < 5; i++ {
		b.Instant(CatSim, "tick", 0, int64(i), "", "")
	}
	var sb strings.Builder
	if err := b.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(),
		"WARNING: trace ring dropped 3 events (oldest first); raise the bus capacity to keep them") {
		t.Fatalf("drop warning missing:\n%s", sb.String())
	}
}

func TestWriteMetricsNilBus(t *testing.T) {
	var b *Bus
	var sb strings.Builder
	if err := b.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no bus") {
		t.Fatalf("nil-bus report: %q", sb.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	b := NewBus(sim.NewEngine(), 8)
	b.Enable()
	durs := []sim.Duration{
		sim.Microsecond,      // le10us
		50 * sim.Microsecond, // le100us
		sim.Millisecond,      // le1ms (inclusive bound)
		9 * sim.Millisecond,  // le10ms
		99 * sim.Millisecond, // le100ms
		sim.Second,           // le1s
		2 * sim.Second,       // +inf
	}
	for _, d := range durs {
		b.Observe("x", 0, "", d)
	}
	h := b.Histogram("x", 0, "")
	if h == nil || h.Count != 7 {
		t.Fatalf("hist = %+v", h)
	}
	for i, n := range h.Buckets {
		if n != 1 {
			t.Errorf("bucket %d = %d, want 1", i, n)
		}
	}
}
