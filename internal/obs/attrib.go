package obs

import (
	"fmt"
	"io"
	"sort"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// Interval is one stretch of attributable activity on a rail: an owner's
// task on a core, its command on an accelerator, its frame in the air.
type Interval struct {
	Start, End sim.Time
	Owner      int
}

// Gap is a stretch with no trustworthy DAQ samples (a meter dropout);
// blame computed inside one is flagged Degraded.
type Gap struct {
	From, To sim.Time
}

// Share is one owner's fraction of a sample's power.
type Share struct {
	Owner int
	Frac  float64
}

// Blame is one attributed power sample: the measured watts split into
// per-owner shares that always sum to 1.0. Owner 0 collects both kernel
// activity and idle floor power.
type Blame struct {
	T        sim.Time
	W        power.Watts
	Shares   []Share // sorted by Owner
	Degraded bool    // window overlaps a meter dropout
}

// Attribute joins meter samples with activity intervals: each sample's
// window [T, T+period) is split among the owners active in it. An owner's
// share is its fraction of total occupancy, scaled by how much of the
// window was covered at all; the uncovered remainder — idle floor power —
// goes to owner 0. Shares therefore sum to exactly 1.0 per sample, which
// the edge-case tests assert across context switches, DVFS overlap, and
// dropout gaps.
func Attribute(samples []power.Sample, period sim.Duration, intervals []Interval, gaps []Gap) []Blame {
	if period <= 0 {
		panic("obs: attribution needs a positive sample period")
	}
	out := make([]Blame, 0, len(samples))
	for _, s := range samples {
		lo, hi := s.T, s.T.Add(period)
		occ := make(map[int]sim.Duration)
		var clipped []Interval
		var total sim.Duration
		for _, iv := range intervals {
			a, b := iv.Start, iv.End
			if a < lo {
				a = lo
			}
			if b > hi {
				b = hi
			}
			if b <= a {
				continue
			}
			occ[iv.Owner] += b.Sub(a)
			total += b.Sub(a)
			clipped = append(clipped, Interval{Start: a, End: b, Owner: iv.Owner})
		}
		covered := union(clipped)
		window := hi.Sub(lo)
		bl := Blame{T: s.T, W: s.W, Degraded: overlapsGap(lo, hi, gaps)}
		idle := float64(window-covered) / float64(window)
		owners := make([]int, 0, len(occ))
		for o := range occ {
			owners = append(owners, o)
		}
		sort.Ints(owners)
		activeFrac := float64(covered) / float64(window)
		for _, o := range owners {
			frac := float64(occ[o]) / float64(total) * activeFrac
			if o == 0 {
				idle += frac
				continue
			}
			bl.Shares = append(bl.Shares, Share{Owner: o, Frac: frac})
		}
		bl.Shares = append([]Share{{Owner: 0, Frac: idle}}, bl.Shares...)
		out = append(out, bl)
	}
	return out
}

// union measures the merged coverage of intervals already clipped to one
// window.
func union(ivs []Interval) sim.Duration {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Start != ivs[j].Start {
			return ivs[i].Start < ivs[j].Start
		}
		return ivs[i].End < ivs[j].End
	})
	var d sim.Duration
	curA, curB := ivs[0].Start, ivs[0].End
	for _, iv := range ivs[1:] {
		if iv.Start > curB {
			d += curB.Sub(curA)
			curA, curB = iv.Start, iv.End
			continue
		}
		if iv.End > curB {
			curB = iv.End
		}
	}
	return d + curB.Sub(curA)
}

func overlapsGap(lo, hi sim.Time, gaps []Gap) bool {
	for _, g := range gaps {
		if g.From < hi && g.To > lo {
			return true
		}
	}
	return false
}

// IntervalsFromEvents extracts the activity intervals for one rail from a
// trace: every span event whose Rail matches. Events arrive oldest-first
// from Bus.Events, so the result is deterministic.
func IntervalsFromEvents(events []Event, rail string) []Interval {
	var out []Interval
	for _, ev := range events {
		if ev.Type != TypeSpan || ev.Rail != rail {
			continue
		}
		out = append(out, Interval{Start: ev.T, End: ev.End, Owner: ev.Owner})
	}
	return out
}

// WriteBlame renders an attribution timeline as stable text: one line per
// sample with the measured watts and each owner's share.
func WriteBlame(w io.Writer, rail string, blames []Blame, owners map[int]string) error {
	if _, err := fmt.Fprintf(w, "# blame timeline rail=%s samples=%d\n", rail, len(blames)); err != nil {
		return err
	}
	for _, bl := range blames {
		flag := ""
		if bl.Degraded {
			flag = " DEGRADED"
		}
		if _, err := fmt.Fprintf(w, "%12d %8.4fW%s", int64(bl.T), bl.W, flag); err != nil {
			return err
		}
		for _, sh := range bl.Shares {
			name := owners[sh.Owner]
			if sh.Owner == 0 {
				name = "idle"
			} else if name == "" {
				name = fmt.Sprintf("app%d", sh.Owner)
			}
			if _, err := fmt.Fprintf(w, " %s=%.4f", name, sh.Frac); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
