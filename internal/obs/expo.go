package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (format 0.0.4) over a MetricsDump. The
// writer is canonical: series appear in sorted key order with one TYPE
// comment per metric family, numbers use fixed formatting, and the same
// dump always yields the same bytes — the fleet CI job byte-diffs the
// exposition across worker counts exactly like every other report.
//
// Mapping: every psbox metric name is prefixed "psbox_" and sanitized to
// the Prometheus grammar ('.' and any other illegal rune become '_').
// Owner and rail become labels, omitted at their system-wide defaults.
// Sim-time histograms expose cumulative le buckets in seconds plus _sum
// and _count, the standard histogram contract.

// promName sanitizes a psbox metric name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("psbox_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelVal escapes a label value per the exposition format.
func promLabelVal(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promLabels renders the {owner=...,rail=...} clause for a key, extended
// by extra pre-rendered pairs; "" when every label is at its default.
func (d *MetricsDump) promLabels(k Key, extra ...string) string {
	var pairs []string
	if k.Owner != 0 {
		owner := d.Owners[k.Owner]
		if owner == "" {
			owner = fmt.Sprintf("app%d", k.Owner)
		}
		pairs = append(pairs, `owner="`+promLabelVal(owner)+`"`)
	}
	if k.Rail != "" {
		pairs = append(pairs, `rail="`+promLabelVal(k.Rail)+`"`)
	}
	pairs = append(pairs, extra...)
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// promBounds are the histogram bucket upper bounds rendered in seconds,
// aligned with histBounds; the +Inf bucket closes the family.
var promBounds = [numBuckets]string{"1e-05", "0.0001", "0.001", "0.01", "0.1", "1", "+Inf"}

// WriteProm renders the dump in Prometheus text exposition format.
func (d *MetricsDump) WriteProm(w io.Writer) error {
	typeLine := func(name, kind string) error {
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}
	prev := ""
	for _, k := range sortKeys(d.Counters) {
		name := promName(k.Name)
		if name != prev {
			if err := typeLine(name, "counter"); err != nil {
				return err
			}
			prev = name
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", name, d.promLabels(k), d.Counters[k]); err != nil {
			return err
		}
	}
	prev = ""
	for _, k := range sortKeys(d.Gauges) {
		name := promName(k.Name)
		if name != prev {
			if err := typeLine(name, "gauge"); err != nil {
				return err
			}
			prev = name
		}
		if _, err := fmt.Fprintf(w, "%s%s %.9g\n", name, d.promLabels(k), d.Gauges[k]); err != nil {
			return err
		}
	}
	prev = ""
	for _, k := range sortKeys(d.Hists) {
		name := promName(k.Name)
		if name != prev {
			if err := typeLine(name, "histogram"); err != nil {
				return err
			}
			prev = name
		}
		h := d.Hists[k]
		var cum uint64
		for i := range h.Buckets {
			cum += h.Buckets[i]
			le := `le="` + promBounds[i] + `"`
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, d.promLabels(k, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %.9g\n", name, d.promLabels(k), h.Sum.Seconds()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, d.promLabels(k), h.Count); err != nil {
			return err
		}
	}
	if err := typeLine("psbox_obs_events_total", "counter"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "psbox_obs_events_total %d\n", d.Events); err != nil {
		return err
	}
	if err := typeLine("psbox_obs_dropped_events_total", "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "psbox_obs_dropped_events_total %d\n", d.Dropped)
	return err
}
