package daemon_test

import (
	"bytes"
	"math"
	"testing"

	psbox "psbox"
	"psbox/internal/daemon"
	"psbox/internal/sim"
)

// build wires a render server and two clients on the AM57 GPU.
func build(t *testing.T, seed uint64, aware bool) (*psbox.System, *daemon.RenderServer, *psbox.App, *psbox.App) {
	t.Helper()
	sys := psbox.NewAM57(seed)
	srv := daemon.NewRenderServer(sys.Kernel, "gpu", 0, aware)
	a := sys.Kernel.NewApp("clientA")
	a.Spawn("render", 0, srv.Client(a, "frameA", 3000, 0.6, 20*sim.Millisecond))
	b := sys.Kernel.NewApp("clientB")
	b.Spawn("render", 1, srv.Client(b, "frameB", 9000, 0.8, 16*sim.Millisecond))
	return sys, srv, a, b
}

func TestDaemonServesClients(t *testing.T) {
	sys, srv, a, b := build(t, 1, true)
	sys.Run(1 * psbox.Second)
	if srv.Accepted(a.ID) < 30 || srv.Accepted(b.ID) < 30 {
		t.Fatalf("accepted = %d/%d", srv.Accepted(a.ID), srv.Accepted(b.ID))
	}
	if srv.App().Counter("served") < 60 {
		t.Fatalf("served = %v", srv.App().Counter("served"))
	}
	if srv.QueueLen() > 4 {
		t.Fatalf("daemon backlog growing: %d", srv.QueueLen())
	}
}

func TestNaiveDaemonCollapsesAttribution(t *testing.T) {
	sys, srv, a, b := build(t, 2, false)
	sys.Run(1 * psbox.Second)
	drv := sys.Kernel.Accel("gpu")
	// All device work lands on the daemon's identity.
	if drv.Completed(a.ID) != 0 || drv.Completed(b.ID) != 0 {
		t.Fatal("clients should own no commands under the naive daemon")
	}
	if drv.Completed(srv.App().ID) < 60 {
		t.Fatalf("daemon owns %d commands", drv.Completed(srv.App().ID))
	}
}

func TestAwareDaemonPreservesClientIdentity(t *testing.T) {
	sys, srv, a, b := build(t, 3, true)
	sys.Run(1 * psbox.Second)
	drv := sys.Kernel.Accel("gpu")
	if drv.Completed(srv.App().ID) != 0 {
		t.Fatal("aware daemon should own no device work itself")
	}
	if drv.Completed(a.ID) < 30 || drv.Completed(b.ID) < 30 {
		t.Fatalf("clients own %d/%d commands", drv.Completed(a.ID), drv.Completed(b.ID))
	}
}

// The §7 point end to end: a client's GPU sandbox works through an aware
// daemon (observation ≈ direct submission) and is blind through a naive
// one.
func TestClientSandboxThroughDaemon(t *testing.T) {
	observe := func(aware bool) float64 {
		sys, _, a, _ := build(t, 4, aware)
		box := sys.Sandbox.MustCreate(a, psbox.HWGPU)
		box.Enter()
		sys.Run(1 * psbox.Second)
		return box.Read()
	}
	idleOnly := func() float64 {
		// Reference: one second of pure GPU idle power.
		sys := psbox.NewAM57(4)
		return sys.Kernel.Accel("gpu").Device().IdlePower() * 1.0
	}

	naive := observe(false)
	aware := observe(true)
	idle := idleOnly()

	// Through the naive daemon the box sees only idle fill.
	if math.Abs(naive-idle)/idle > 0.02 {
		t.Fatalf("naive-daemon observation %v should equal idle %v", naive, idle)
	}
	// Through the aware daemon it sees its own rendering on top.
	if aware < idle*1.05 {
		t.Fatalf("aware-daemon observation %v barely above idle %v", aware, idle)
	}
}

func TestDaemonEmptyRequestPanics(t *testing.T) {
	sys := psbox.NewAM57(5)
	srv := daemon.NewRenderServer(sys.Kernel, "gpu", 0, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	srv.Submit(daemon.Request{Client: 1, Work: 0})
}

func TestDelegationForUnknownAppPanics(t *testing.T) {
	sys := psbox.NewAM57(6)
	app := sys.Kernel.NewApp("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// The task starts executing at spawn; the bad delegation trips there
	// or at the latest inside Run.
	app.Spawn("t", 0, psbox.Sequence(
		psbox.SubmitAccelAs{Dev: "gpu", Kind: "k", Work: 100, DynW: 0.1, OnBehalfOf: 999},
	))
	sys.Run(10 * psbox.Millisecond)
}

// A client that exits with requests still queued must not have them
// rendered: the daemon discards them at serve time and counts the drops,
// while a live client's requests are served as usual. Both daemon modes
// must drop — the naive one would otherwise bill orphaned frames to its
// own identity forever.
func TestDaemonDropsRequestsFromDeadClients(t *testing.T) {
	for _, aware := range []bool{true, false} {
		sys := psbox.NewAM57(7)
		srv := daemon.NewRenderServer(sys.Kernel, "gpu", 0, aware)

		ghost := sys.Kernel.NewApp("ghost")
		ghost.Spawn("noop", 1, psbox.Sequence()) // exits immediately
		live := sys.Kernel.NewApp("live")
		live.Spawn("park", 1, psbox.Loop(psbox.Sleep{D: 50 * sim.Millisecond}))

		for i := 0; i < 3; i++ {
			srv.Submit(daemon.Request{Client: ghost.ID, Kind: "orphan", Work: 1000, DynW: 0.5})
		}
		srv.Submit(daemon.Request{Client: live.ID, Kind: "frame", Work: 1000, DynW: 0.5})

		sys.Run(100 * psbox.Millisecond)

		if got := srv.Dropped(); got != 3 {
			t.Fatalf("aware=%v: dropped = %d, want 3", aware, got)
		}
		if srv.QueueLen() != 0 {
			t.Fatalf("aware=%v: queue stuck at %d", aware, srv.QueueLen())
		}
		drv := sys.Kernel.Accel("gpu")
		if drv.Completed(ghost.ID) != 0 {
			t.Fatalf("aware=%v: dead client's work reached the device", aware)
		}
		served := drv.Completed(live.ID) + drv.Completed(srv.App().ID)
		if served != 1 {
			t.Fatalf("aware=%v: live client's request not served: %d", aware, served)
		}
	}
}

// TestOverflowDropsAttributedPerClient: when a flood from one client
// evicts the queue's stale heads, the per-client overflow counters record
// whose work was discarded, and churning dead clients through the queue
// keeps the breakdown deterministic (it always equals the eviction order
// of the bounded queue, never map iteration).
func TestOverflowDropsAttributedPerClient(t *testing.T) {
	sys := psbox.NewAM57(8)
	srv := daemon.NewRenderServer(sys.Kernel, "gpu", 0, true)
	srv.SetQueueBound(4)

	// Two churn generations of short-lived clients whose requests go
	// stale, then a flood that evicts them.
	ghostA := sys.Kernel.NewApp("ghostA")
	ghostA.Spawn("noop", 1, psbox.Sequence())
	ghostB := sys.Kernel.NewApp("ghostB")
	ghostB.Spawn("noop", 1, psbox.Sequence())
	flood := sys.Kernel.NewApp("flood")
	flood.Spawn("park", 1, psbox.Loop(psbox.Sleep{D: 50 * sim.Millisecond}))

	for i := 0; i < 3; i++ {
		srv.Submit(daemon.Request{Client: ghostA.ID, Kind: "stale", Work: 1000, DynW: 0.5})
	}
	srv.Submit(daemon.Request{Client: ghostB.ID, Kind: "stale", Work: 1000, DynW: 0.5})
	// Queue is now full [A A A B]; six fresh requests evict all four
	// stale heads (3×A, 1×B) and then two of their own.
	for i := 0; i < 6; i++ {
		srv.Submit(daemon.Request{Client: flood.ID, Kind: "fresh", Work: 1000, DynW: 0.5})
	}

	if got := srv.DroppedOverflow(); got != 6 {
		t.Fatalf("overflow = %d, want 6", got)
	}
	if got := srv.DroppedOverflowFor(ghostA.ID); got != 3 {
		t.Fatalf("ghostA overflow = %d, want 3", got)
	}
	if got := srv.DroppedOverflowFor(ghostB.ID); got != 1 {
		t.Fatalf("ghostB overflow = %d, want 1", got)
	}
	if got := srv.DroppedOverflowFor(flood.ID); got != 2 {
		t.Fatalf("flood overflow = %d, want 2", got)
	}
	if got := srv.DroppedOverflowFor(999); got != 0 {
		t.Fatalf("unknown client overflow = %d, want 0", got)
	}

	// The dead-client churn stays deterministic end to end: twin systems
	// running the daemon under the same churn produce byte-identical
	// checkpoints of it (the per-client breakdown is encoded sorted).
	sys.RegisterSnapshotter("daemon", srv)
	sys.Run(100 * psbox.Millisecond)
	twin := func() []byte {
		s2 := psbox.NewAM57(8)
		sv2 := daemon.NewRenderServer(s2.Kernel, "gpu", 0, true)
		sv2.SetQueueBound(4)
		gA := s2.Kernel.NewApp("ghostA")
		gA.Spawn("noop", 1, psbox.Sequence())
		gB := s2.Kernel.NewApp("ghostB")
		gB.Spawn("noop", 1, psbox.Sequence())
		fl := s2.Kernel.NewApp("flood")
		fl.Spawn("park", 1, psbox.Loop(psbox.Sleep{D: 50 * sim.Millisecond}))
		for i := 0; i < 3; i++ {
			sv2.Submit(daemon.Request{Client: gA.ID, Kind: "stale", Work: 1000, DynW: 0.5})
		}
		sv2.Submit(daemon.Request{Client: gB.ID, Kind: "stale", Work: 1000, DynW: 0.5})
		for i := 0; i < 6; i++ {
			sv2.Submit(daemon.Request{Client: fl.ID, Kind: "fresh", Work: 1000, DynW: 0.5})
		}
		s2.RegisterSnapshotter("daemon", sv2)
		s2.Run(100 * psbox.Millisecond)
		return s2.Snapshot()
	}
	if a, b := sys.Snapshot(), twin(); !bytes.Equal(a, b) {
		t.Fatalf("twin daemon checkpoints differ: %d vs %d bytes", len(a), len(b))
	}
}
