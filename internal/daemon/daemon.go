// Package daemon models a userspace multiplexing daemon, the paper's §7
// "Userspace OS daemon" case: on systems like Android, app requests are
// multiplexed not only by kernel drivers but by user-level servers (the
// render/composition server, the media server). Such a daemon submits
// device work on its clients' behalf — and unless it is made to respect
// psbox boundaries, every client's power impact collapses onto the
// daemon's identity: balloons cannot insulate it and a client's sandbox
// observes nothing of its own rendering.
//
// RenderServer implements both behaviours: the naive daemon submits under
// its own app ID; the psbox-aware daemon tags each submission with the
// requesting client (the kernel's SubmitAccelAs delegation), restoring
// per-client balloons and attribution.
package daemon

import (
	"fmt"

	"psbox/internal/kernel"
	"psbox/internal/sim"
)

// Request is one unit of client work for the daemon.
type Request struct {
	Client int // requesting app ID
	Kind   string
	Work   float64
	DynW   float64
}

// DefaultQueueBound is the daemon's request-queue capacity. Real render
// servers bound their IPC queues; an unbounded queue would also let one
// runaway client grow daemon state without limit.
const DefaultQueueBound = 256

// RenderServer is a render-server daemon over one accelerator.
type RenderServer struct {
	app   *kernel.App
	dev   string
	aware bool

	queue    []Request
	maxQueue int
	accepted map[int]uint64
	dropped  uint64

	// droppedOverflow counts requests discarded at Submit time because the
	// queue was full (drop-oldest: the discarded request is the queue head,
	// the stalest work, deterministically). droppedOverflowBy breaks the
	// same count down by the discarded request's client, so a flood from
	// one client that evicts another's stale frames is attributable.
	droppedOverflow   uint64
	droppedOverflowBy map[int]uint64
}

// NewRenderServer registers the daemon app and spawns its server loop on
// the given core. If aware is true the daemon respects psbox boundaries by
// delegating submissions to the requesting client's identity.
func NewRenderServer(k *kernel.Kernel, dev string, core int, aware bool) *RenderServer {
	s := &RenderServer{
		dev:               dev,
		aware:             aware,
		maxQueue:          DefaultQueueBound,
		accepted:          make(map[int]uint64),
		droppedOverflowBy: make(map[int]uint64),
	}
	s.app = k.NewApp("renderd")
	s.app.Spawn("server", core, kernel.ProgramFunc(s.step))
	return s
}

// App returns the daemon's own principal.
func (s *RenderServer) App() *kernel.App { return s.app }

// Aware reports whether the daemon respects psbox boundaries.
func (s *RenderServer) Aware() bool { return s.aware }

// SetQueueBound changes the queue capacity; n must be positive.
func (s *RenderServer) SetQueueBound(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("daemon: queue bound must be positive, got %d", n))
	}
	s.maxQueue = n
}

// QueueBound reports the queue capacity.
func (s *RenderServer) QueueBound() int { return s.maxQueue }

// Submit enqueues a client request (the IPC into the daemon). Client
// programs call this from their step functions; the enqueue itself is
// cheap, the daemon's marshalling cost is paid by the daemon's CPU task.
// When the queue is at capacity the oldest queued request is discarded
// to make room — stale frames lose to fresh ones, deterministically.
func (s *RenderServer) Submit(req Request) {
	if req.Work <= 0 {
		panic(fmt.Sprintf("daemon: empty request from client %d", req.Client))
	}
	for len(s.queue) >= s.maxQueue {
		s.droppedOverflowBy[s.queue[0].Client]++
		s.queue = s.queue[1:]
		s.droppedOverflow++
	}
	s.queue = append(s.queue, req)
	s.accepted[req.Client]++
}

// Accepted reports how many requests a client has handed to the daemon.
func (s *RenderServer) Accepted(client int) uint64 { return s.accepted[client] }

// QueueLen reports requests waiting in the daemon.
func (s *RenderServer) QueueLen() int { return len(s.queue) }

// Dropped reports how many queued requests were discarded at serve time
// because their client had already exited.
func (s *RenderServer) Dropped() uint64 { return s.dropped }

// DroppedOverflow reports how many requests were discarded at submit time
// because the bounded queue was full.
func (s *RenderServer) DroppedOverflow() uint64 { return s.droppedOverflow }

// DroppedOverflowFor reports how many of the overflow-discarded requests
// belonged to the given client.
func (s *RenderServer) DroppedOverflowFor(client int) uint64 { return s.droppedOverflowBy[client] }

// step is the daemon's server loop: poll the request queue, marshal, and
// submit to the device — under the client's identity when aware, under the
// daemon's own otherwise.
func (s *RenderServer) step(env *kernel.Env) kernel.Action {
	for len(s.queue) > 0 {
		req := s.queue[0]
		s.queue = s.queue[1:]
		if c := s.app.Kernel().FindApp(req.Client); c == nil || !c.Alive() {
			// The client exited between the IPC and service. Rendering the
			// frame anyway would burn device power nobody consumes — and
			// under the naive daemon, bill it to the daemon's identity with
			// no principal left to answer for it. Discard at serve time.
			s.dropped++
			continue
		}
		env.Count("served", 1)
		if s.aware {
			return kernel.SubmitAccelAs{
				Dev: s.dev, Kind: req.Kind, Work: req.Work, DynW: req.DynW,
				OnBehalfOf: req.Client,
			}
		}
		return kernel.SubmitAccel{Dev: s.dev, Kind: req.Kind, Work: req.Work, DynW: req.DynW}
	}
	// An event-driven server parks between requests; the poll period
	// stands in for its wakeup latency.
	return kernel.Sleep{D: 500 * sim.Microsecond}
}

// Client builds a frame-paced client program that renders through the
// daemon: marshal on the CPU, hand the request over, sleep to the next
// frame.
func (s *RenderServer) Client(app *kernel.App, kind string, work, dynW float64,
	frame sim.Duration) kernel.Program {
	step := 0
	return kernel.ProgramFunc(func(env *kernel.Env) kernel.Action {
		step++
		switch step % 3 {
		case 1:
			return kernel.Compute{Cycles: float64(env.Rand.Jitter(2e5, 0.15))}
		case 2:
			s.Submit(Request{Client: app.ID, Kind: kind,
				Work: float64(env.Rand.Jitter(int64(work), 0.1)), DynW: dynW})
			env.Count("frames", 1)
			return kernel.Compute{Cycles: 1}
		default:
			return kernel.Sleep{D: frame}
		}
	})
}
