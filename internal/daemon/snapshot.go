package daemon

import (
	"sort"

	"psbox/internal/snapshot"
)

// Snapshot encodes the daemon: its identity and mode, the bounded request
// queue in order, the per-client acceptance counters (sorted by client),
// and both drop counters.
func (s *RenderServer) Snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(s.app.ID))
	enc.Str(s.dev)
	enc.Bool(s.aware)
	enc.I64(int64(s.maxQueue))
	enc.Len(len(s.queue))
	for _, req := range s.queue {
		enc.I64(int64(req.Client))
		enc.Str(req.Kind)
		enc.F64(req.Work)
		enc.F64(req.DynW)
	}
	clients := make([]int, 0, len(s.accepted))
	for c := range s.accepted {
		clients = append(clients, c)
	}
	sort.Ints(clients)
	enc.Len(len(clients))
	for _, c := range clients {
		enc.I64(int64(c))
		enc.U64(s.accepted[c])
	}
	enc.U64(s.dropped)
	enc.U64(s.droppedOverflow)
	victims := make([]int, 0, len(s.droppedOverflowBy))
	for c := range s.droppedOverflowBy {
		victims = append(victims, c)
	}
	sort.Ints(victims)
	enc.Len(len(victims))
	for _, c := range victims {
		enc.I64(int64(c))
		enc.U64(s.droppedOverflowBy[c])
	}
}

// Restore verifies the live daemon against a checkpoint section.
func (s *RenderServer) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, s.Snapshot) }
