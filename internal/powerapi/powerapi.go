// Package powerapi wraps the psbox native interface under a high-level
// sensor-style API, the paper's §8.2 adoption path: power becomes one more
// sensor type. Apps subscribe to the sample stream as they would to an
// accelerometer, and register callbacks for app-defined power events —
// "frequent power spikes", "power keeps increasing" — expressed as
// temporal predicates evaluated continuously over the samples (the role
// the paper gives to the sensor hub runtime).
package powerapi

import (
	"fmt"

	"psbox/internal/core"
	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// Event is one fired power event.
type Event struct {
	At        sim.Time
	Predicate string
	// Value is predicate-specific: the observed watts for threshold
	// predicates, the spike ratio for spike predicates, the slope in W/s
	// for trend predicates.
	Value float64
}

// Predicate is a stateful temporal condition over the power sample stream.
// Feed consumes a batch of samples in timestamp order and returns any
// events that fired within it.
type Predicate interface {
	Name() string
	Feed(samples []power.Sample) []Event
}

// Listener pumps a sandbox's virtual power meter on a batch cadence (the
// sensor hub's delivery period) and evaluates subscriptions.
type Listener struct {
	eng   *sim.Engine
	box   *core.Box
	scope core.HW
	batch sim.Duration

	subs    []subscription
	running bool
	stopped bool
	samples uint64
}

type subscription struct {
	pred Predicate
	fn   func(Event)
}

// NewListener builds a listener over one bound scope of a sandbox. The
// batch period plays the role of SensorManager's sampling delay.
func NewListener(eng *sim.Engine, box *core.Box, scope core.HW, batch sim.Duration) *Listener {
	if batch <= 0 {
		batch = 20 * sim.Millisecond
	}
	return &Listener{eng: eng, box: box, scope: scope, batch: batch}
}

// Subscribe registers a callback for a predicate's events
// (SensorManager.registerListener, with a power event type).
func (l *Listener) Subscribe(p Predicate, fn func(Event)) {
	if l.running {
		panic("powerapi: subscribe after Start")
	}
	l.subs = append(l.subs, subscription{pred: p, fn: fn})
}

// Start begins batch delivery. The listener only yields observations while
// the app is inside its sandbox — psbox remains the only way to observe
// power; this API just re-shapes it.
func (l *Listener) Start() {
	if l.running {
		return
	}
	l.running = true
	l.stopped = false
	l.eng.After(l.batch, l.tick)
}

// Stop halts delivery after the current batch.
func (l *Listener) Stop() { l.stopped = true; l.running = false }

// Samples reports how many samples have been delivered to predicates.
func (l *Listener) Samples() uint64 { return l.samples }

func (l *Listener) tick(now sim.Time) {
	if l.stopped {
		return
	}
	batch := l.box.Sample(l.scope, 1<<20)
	l.samples += uint64(len(batch))
	if len(batch) > 0 {
		for _, s := range l.subs {
			for _, ev := range s.pred.Feed(batch) {
				s.fn(ev)
			}
		}
	}
	l.eng.After(l.batch, l.tick)
}

// --- Predicates -----------------------------------------------------------

// above fires when power stays above a threshold for at least a minimum
// duration; it re-arms once power drops below.
type above struct {
	name     string
	watts    power.Watts
	minHold  sim.Duration
	overAt   sim.Time
	over     bool
	reported bool
}

// Above builds a sustained-threshold predicate ("high power").
func Above(watts power.Watts, minHold sim.Duration) Predicate {
	return &above{
		name:    fmt.Sprintf("above(%.3gW,%v)", watts, minHold),
		watts:   watts,
		minHold: minHold,
	}
}

func (a *above) Name() string { return a.name }

func (a *above) Feed(samples []power.Sample) []Event {
	var out []Event
	for _, s := range samples {
		if s.W > a.watts {
			if !a.over {
				a.over = true
				a.overAt = s.T
				a.reported = false
			}
			if !a.reported && s.T.Sub(a.overAt) >= a.minHold {
				a.reported = true
				out = append(out, Event{At: s.T, Predicate: a.name, Value: s.W})
			}
		} else {
			a.over = false
			a.reported = false
		}
	}
	return out
}

// spike fires when a sample exceeds factor × the trailing mean of the
// preceding window ("frequent power spikes" building block).
type spike struct {
	name   string
	factor float64
	win    int
	hist   []float64
	sum    float64
	cool   int
}

// Spike builds a spike predicate: a sample more than factor× the trailing
// mean over window samples. Consecutive spike samples coalesce into one
// event.
func Spike(factor float64, window int) Predicate {
	if window < 4 {
		window = 4
	}
	return &spike{
		name:   fmt.Sprintf("spike(%.2gx,%d)", factor, window),
		factor: factor,
		win:    window,
	}
}

func (p *spike) Name() string { return p.name }

func (p *spike) Feed(samples []power.Sample) []Event {
	var out []Event
	for _, s := range samples {
		if len(p.hist) == p.win {
			mean := p.sum / float64(p.win)
			if mean > 0 && s.W > p.factor*mean {
				if p.cool == 0 {
					out = append(out, Event{At: s.T, Predicate: p.name, Value: s.W / mean})
				}
				p.cool = p.win // re-arm after a quiet window
			} else if p.cool > 0 {
				p.cool--
			}
		}
		p.hist = append(p.hist, s.W)
		p.sum += s.W
		if len(p.hist) > p.win {
			p.sum -= p.hist[0]
			p.hist = p.hist[1:]
		}
	}
	return out
}

// rising fires when the mean power of k consecutive buckets is strictly
// increasing by at least minSlope watts/second overall ("power keeps
// increasing").
type rising struct {
	name     string
	bucket   sim.Duration
	k        int
	minSlope float64

	curStart sim.Time
	curSum   float64
	curN     int
	means    []float64
	starts   []sim.Time
}

// Rising builds a monotone-trend predicate over k buckets of the given
// width.
func Rising(bucket sim.Duration, k int, minSlope float64) Predicate {
	if k < 2 {
		k = 2
	}
	return &rising{
		name:     fmt.Sprintf("rising(%v×%d,%.3gW/s)", bucket, k, minSlope),
		bucket:   bucket,
		k:        k,
		minSlope: minSlope,
	}
}

func (r *rising) Name() string { return r.name }

func (r *rising) Feed(samples []power.Sample) []Event {
	var out []Event
	for _, s := range samples {
		if r.curN == 0 {
			r.curStart = s.T
		}
		if s.T.Sub(r.curStart) >= r.bucket && r.curN > 0 {
			r.means = append(r.means, r.curSum/float64(r.curN))
			r.starts = append(r.starts, r.curStart)
			if len(r.means) > r.k {
				r.means = r.means[1:]
				r.starts = r.starts[1:]
			}
			r.curStart = s.T
			r.curSum, r.curN = 0, 0
			if len(r.means) == r.k && r.monotone() {
				span := r.starts[r.k-1].Sub(r.starts[0]).Seconds()
				slope := (r.means[r.k-1] - r.means[0]) / span
				if slope >= r.minSlope {
					out = append(out, Event{At: s.T, Predicate: r.name, Value: slope})
					// Re-arm: require a fresh run of buckets.
					r.means = r.means[:0]
					r.starts = r.starts[:0]
				}
			}
		}
		r.curSum += s.W
		r.curN++
	}
	return out
}

func (r *rising) monotone() bool {
	for i := 1; i < len(r.means); i++ {
		if r.means[i] <= r.means[i-1] {
			return false
		}
	}
	return true
}
