package powerapi

import (
	"testing"

	psbox "psbox"
	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// feed is a test helper converting (tMs, W) pairs into a 1 ms sample grid.
func feed(p Predicate, pairs ...float64) []Event {
	var samples []power.Sample
	for i := 0; i+1 < len(pairs); i += 2 {
		samples = append(samples, power.Sample{
			T: sim.Time(int64(pairs[i]) * int64(sim.Millisecond)),
			W: pairs[i+1],
		})
	}
	return p.Feed(samples)
}

func TestAbovePredicate(t *testing.T) {
	p := Above(1.0, 3*sim.Millisecond)
	// Below threshold: nothing.
	if evs := feed(p, 0, 0.5, 1, 0.6, 2, 0.9); len(evs) != 0 {
		t.Fatalf("events below threshold: %v", evs)
	}
	// Above, but too briefly: nothing.
	if evs := feed(p, 3, 1.5, 4, 1.4, 5, 0.5); len(evs) != 0 {
		t.Fatalf("short excursion fired: %v", evs)
	}
	// Sustained: exactly one event at the hold point.
	evs := feed(p, 6, 1.5, 7, 1.6, 8, 1.4, 9, 1.5, 10, 1.6)
	if len(evs) != 1 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].At != sim.Time(9*sim.Millisecond) {
		t.Fatalf("fired at %v", evs[0].At)
	}
	// Stays above: no re-fire until it drops and rises again.
	if evs := feed(p, 11, 1.7, 12, 1.7); len(evs) != 0 {
		t.Fatal("re-fired while held")
	}
	feed(p, 13, 0.2)
	if evs := feed(p, 14, 1.5, 15, 1.5, 16, 1.5, 17, 1.5); len(evs) != 1 {
		t.Fatal("should re-arm after dropping below")
	}
}

func TestSpikePredicate(t *testing.T) {
	p := Spike(2.0, 4)
	// Establish a baseline of 1 W.
	if evs := feed(p, 0, 1, 1, 1, 2, 1, 3, 1); len(evs) != 0 {
		t.Fatal("baseline fired")
	}
	// A 3 W sample is a 3× spike.
	evs := feed(p, 4, 3)
	if len(evs) != 1 || evs[0].Value < 2.9 || evs[0].Value > 3.1 {
		t.Fatalf("spike events = %v", evs)
	}
	// Immediately following elevated samples coalesce (cooldown).
	if evs := feed(p, 5, 3); len(evs) != 0 {
		t.Fatal("coalescing failed")
	}
}

func TestRisingPredicate(t *testing.T) {
	p := Rising(2*sim.Millisecond, 3, 10)
	// Three strictly increasing 2 ms buckets: 1, 2, 3 W over 4 ms span
	// → slope 500 W/s ≥ 10.
	evs := feed(p,
		0, 1, 1, 1,
		2, 2, 3, 2,
		4, 3, 5, 3,
		6, 3, // closes the third bucket
	)
	if len(evs) != 1 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].Value < 400 || evs[0].Value > 600 {
		t.Fatalf("slope = %v", evs[0].Value)
	}
	// Flat buckets: nothing.
	p2 := Rising(2*sim.Millisecond, 3, 10)
	evs = feed(p2,
		0, 1, 1, 1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1, 7, 1,
	)
	if len(evs) != 0 {
		t.Fatalf("flat trend fired: %v", evs)
	}
}

func TestPredicateNames(t *testing.T) {
	for _, p := range []Predicate{
		Above(1, sim.Millisecond), Spike(2, 8), Rising(sim.Millisecond, 3, 1),
	} {
		if p.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

// End to end: a sandboxed app's burst pattern drives the sensor-style API.
func TestListenerEndToEnd(t *testing.T) {
	sys := psbox.NewAM57(21)
	app := sys.Kernel.NewApp("bursty")
	app.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 12e6}, // long burst: sustained high power
		psbox.Sleep{D: 60 * psbox.Millisecond},
	))
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	box.Enter()

	l := NewListener(sys.Eng, box, psbox.HWCPU, 10*psbox.Millisecond)
	var highs []Event
	idle := sys.Kernel.CPU().IdlePower()
	l.Subscribe(Above(idle+0.3, 2*psbox.Millisecond), func(e Event) { highs = append(highs, e) })
	l.Start()
	sys.Run(1 * psbox.Second)
	l.Stop()
	sys.Run(100 * psbox.Millisecond)

	if l.Samples() == 0 {
		t.Fatal("listener delivered no samples")
	}
	// Roughly one high-power event per burst (~12 bursts/s).
	if len(highs) < 6 || len(highs) > 20 {
		t.Fatalf("high-power events = %d", len(highs))
	}
	after := l.Samples()
	sys.Run(100 * psbox.Millisecond)
	if l.Samples() != after {
		t.Fatal("listener kept running after Stop")
	}
}

func TestListenerSubscribeAfterStartPanics(t *testing.T) {
	sys := psbox.NewAM57(22)
	app := sys.Kernel.NewApp("a")
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	l := NewListener(sys.Eng, box, psbox.HWCPU, 0)
	l.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Subscribe(Above(1, 0), func(Event) {})
}
