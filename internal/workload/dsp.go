package workload

import (
	"psbox/internal/kernel"
	"psbox/internal/sim"
)

// dspKernel builds an offload loop: submit one DSP command of `work`
// units (kernels run on one C66x core; the other core serves other apps,
// which is how commands of different apps overlap — Fig. 7(c)), wait for
// completion, count FLOPs, rest.
func dspKernel(name, desc, kind string, work float64, dynW float64,
	gflopsPerIter float64, rest sim.Duration, cores int, saturate bool) AppSpec {
	if saturate {
		rest = 0
	}
	return AppSpec{
		Name:   instanceName(name),
		Domain: "dsp",
		Desc:   desc,
		Threads: []ThreadSpec{{
			Name: "offload",
			Core: 0 % cores,
			Prog: kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
				step := 0
				var iterStart sim.Time
				var period sim.Duration
				return func(env *kernel.Env) kernel.Action {
					step++
					switch step % 4 {
					case 1:
						iterStart = env.Now()
						if period == 0 {
							// Deadline pacing: the iteration period is the
							// nominal kernel time plus think time, so
							// scheduling delays eat slack rather than
							// stretching the offload rate.
							period = sim.Duration(work/1e6*1e9) + rest
						}
						// Marshalling/cache-flush CPU work around the call.
						return kernel.Compute{Cycles: float64(env.Rand.Jitter(6e5, 0.1))}
					case 2:
						return kernel.SubmitAccel{Dev: "dsp", Kind: kind,
							Work: float64(env.Rand.Jitter(int64(work), 0.08)), DynW: dynW}
					case 3:
						return kernel.AwaitAccel{Dev: "dsp", MaxBacklog: 0}
					default:
						env.Count("gflops", gflopsPerIter)
						env.Count("cmds", 1)
						if saturate {
							return kernel.Compute{Cycles: 1}
						}
						if spent := env.Now().Sub(iterStart); spent < period {
							return kernel.Sleep{D: period - spent}
						}
						return kernel.Compute{Cycles: 1}
					}
				}
			}()),
		}},
	}
}

// SGEMM models single-precision matrix multiplication offload (Fig. 5 "T").
func SGEMM(cores int, saturate bool) AppSpec {
	return dspKernel("sgemm",
		"Single-precision matrix-multiplication (TI am57 SDK)",
		"sgemm", 1.8e4, 0.50, 1.2, 24*sim.Millisecond, cores, saturate)
}

// DGEMM models double-precision matrix multiplication: the Fig. 6 DSP-row
// subject. Long ~100 ms commands paced with think time.
func DGEMM(cores int, saturate bool) AppSpec {
	return dspKernel("dgemm",
		"Double-precision matrix-multiplication (TI am57 SDK)",
		"dgemm", 1e5, 0.55, 2.0, 170*sim.Millisecond, cores, saturate)
}

// Monte models a Monte Carlo simulation: many short DSP commands.
func Monte(cores int, saturate bool) AppSpec {
	spec := dspKernel("monte",
		"Monte Carlo simulation (TI am57 SDK)",
		"monte", 8e3, 0.40, 0.25, 14*sim.Millisecond, cores, saturate)
	return spec
}
