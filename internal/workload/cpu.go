package workload

import (
	"psbox/internal/kernel"
	"psbox/internal/sim"
)

// cpuPipeline builds a frame-paced multi-thread CPU program: every period
// each thread burns ≈cycles (with jitter), counts progress, and sleeps the
// residual. Saturating variants never sleep.
func cpuPipeline(name string, threads int, cores int, cycles float64,
	period sim.Duration, jitter float64, counter string, unitsPerIter float64,
	saturate bool) AppSpec {

	spec := AppSpec{Name: instanceName(name)}
	for i := 0; i < threads; i++ {
		c := cycles
		spec.Threads = append(spec.Threads, ThreadSpec{
			Name: "worker",
			Core: i % cores,
			Prog: kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
				step := 0
				return func(env *kernel.Env) kernel.Action {
					step++
					if step%2 == 1 {
						return kernel.Compute{Cycles: float64(env.Rand.Jitter(int64(c), jitter))}
					}
					env.Count(counter, unitsPerIter)
					if saturate {
						return kernel.Compute{Cycles: 1}
					}
					return kernel.Sleep{D: period}
				}
			}()),
		})
	}
	return spec
}

// Calib3D models OpenCV camera calibration and 3D reconstruction: two
// worker threads detecting chessboard corners per frame (Fig. 5 "O").
// Throughput is reported in KB of frame data processed, matching Fig. 8(a).
func Calib3D(cores int, saturate bool) AppSpec {
	spec := cpuPipeline("calib3d", 2, cores, 9e6, 44*sim.Millisecond, 0.15,
		"kb", 2.0, saturate)
	spec.Domain = "cpu"
	spec.Desc = "Camera calibration and 3D reconstruction (OpenCV 3.1)"
	return spec
}

// Bodytrack models the PARSEC 3 body-tracking pipeline: two annealing
// worker threads per frame, with input-dependent work variation.
func Bodytrack(cores int, saturate bool) AppSpec {
	spec := cpuPipeline("bodytrack", 2, cores, 16e6, 66*sim.Millisecond, 0.35,
		"frames", 1, saturate)
	spec.Domain = "cpu"
	spec.Desc = "A vision program tracking human body move (PARSEC 3)"
	return spec
}

// Dedup models the PARSEC deduplicating compressor: chunk-paced bursts
// with bimodal chunk sizes and minimal think time.
func Dedup(cores int, saturate bool) AppSpec {
	spec := AppSpec{
		Name:   instanceName("dedup"),
		Domain: "cpu",
		Desc:   "Compressing data stream with deduplication (PARSEC 3)",
	}
	for i := 0; i < 2; i++ {
		spec.Threads = append(spec.Threads, ThreadSpec{
			Name: "chunker",
			Core: i % cores,
			Prog: kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
				step := 0
				return func(env *kernel.Env) kernel.Action {
					step++
					if step%2 == 1 {
						// Bimodal: most chunks dedup cheaply, some compress.
						cycles := int64(2e6)
						if env.Rand.Float64() < 0.3 {
							cycles = 7e6
						}
						return kernel.Compute{Cycles: float64(env.Rand.Jitter(cycles, 0.2))}
					}
					env.Count("chunks", 1)
					if saturate {
						return kernel.Compute{Cycles: 1}
					}
					return kernel.Sleep{D: 3 * sim.Millisecond}
				}
			}()),
		})
	}
	return spec
}

// Spin is a minimal always-busy single-thread app, used by the Fig. 3(a)
// entanglement demonstration.
func Spin(core int) AppSpec {
	return AppSpec{
		Name:   instanceName("spin"),
		Domain: "cpu",
		Desc:   "Synthetic busy loop",
		Threads: []ThreadSpec{{
			Name: "spin",
			Core: core,
			Prog: kernel.Loop(kernel.Compute{Cycles: 1e6}),
		}},
	}
}
