package workload

import (
	"fmt"

	"psbox/internal/kernel"
	"psbox/internal/sim"
)

// FidelityLevel is one operating point of the VR renderer: work per frame
// and frame rate trade quality for power.
type FidelityLevel struct {
	Name           string
	CyclesPerFrame float64
	Period         sim.Duration
}

// VRFidelityLevels is the renderer's quality ladder, lowest power first.
var VRFidelityLevels = []FidelityLevel{
	{Name: "minimal", CyclesPerFrame: 0.8e6, Period: 66 * sim.Millisecond},
	{Name: "low", CyclesPerFrame: 2.5e6, Period: 50 * sim.Millisecond},
	{Name: "medium", CyclesPerFrame: 6e6, Period: 33 * sim.Millisecond},
	{Name: "high", CyclesPerFrame: 12e6, Period: 22 * sim.Millisecond},
	{Name: "ultra", CyclesPerFrame: 20e6, Period: 16 * sim.Millisecond},
}

// VR is the §6.4 end-to-end use case: a gesture-recognition task whose
// load varies with scene content (the number of hand contours per frame),
// and a rendering task that animates water waves and can trade fidelity
// for power at run time.
type VR struct {
	fidelity int
	contours int
}

// NewVR builds the scenario at the given initial fidelity level.
func NewVR(initialFidelity int) *VR {
	if initialFidelity < 0 || initialFidelity >= len(VRFidelityLevels) {
		panic(fmt.Sprintf("workload: fidelity %d out of range", initialFidelity))
	}
	return &VR{fidelity: initialFidelity, contours: 3}
}

// Fidelity reports the renderer's current level.
func (v *VR) Fidelity() int { return v.fidelity }

// SetFidelity moves the renderer to a level; the next frame uses it. This
// is the knob the power-aware adaptation loop turns.
func (v *VR) SetFidelity(l int) {
	if l < 0 {
		l = 0
	}
	if l >= len(VRFidelityLevels) {
		l = len(VRFidelityLevels) - 1
	}
	v.fidelity = l
}

// Contours exposes the gesture task's current scene complexity (tests and
// traces).
func (v *VR) Contours() int { return v.contours }

// GestureSpec instantiates the gesture task as its own principal (the
// paper sandboxes the rendering task alone; a psbox may enclose "one or a
// group of user processes").
func (v *VR) GestureSpec(cores int) AppSpec {
	s := v.Spec(cores)
	return AppSpec{Name: instanceName("vr-gesture"), Domain: "cpu",
		Desc: "VR gesture-recognition task", Threads: s.Threads[:1]}
}

// RenderSpec instantiates the rendering task as its own principal.
func (v *VR) RenderSpec(cores int) AppSpec {
	s := v.Spec(cores)
	return AppSpec{Name: instanceName("vr-render"), Domain: "cpu",
		Desc: "VR adaptive rendering task", Threads: s.Threads[1:]}
}

// Spec instantiates the two tasks. The gesture task runs on core 0 and the
// renderer on core min(1, cores-1).
func (v *VR) Spec(cores int) AppSpec {
	renderCore := 1
	if renderCore >= cores {
		renderCore = 0
	}
	gesture := kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
		step := 0
		return func(env *kernel.Env) kernel.Action {
			step++
			if step%2 == 1 {
				// Contours follow a bounded random walk: the inputs (hand
				// positions) vary, and with them the gesture task's power
				// impact — the co-runner noise of Fig. 9.
				v.contours += env.Rand.Intn(3) - 1
				if v.contours < 0 {
					v.contours = 0
				}
				if v.contours > 8 {
					v.contours = 8
				}
				cycles := 3e6 + float64(v.contours)*1.1e6
				return kernel.Compute{Cycles: float64(env.Rand.Jitter(int64(cycles), 0.1))}
			}
			env.Count("gesture_frames", 1)
			return kernel.Sleep{D: 33 * sim.Millisecond}
		}
	}())
	render := kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
		step := 0
		var frameStart sim.Time
		return func(env *kernel.Env) kernel.Action {
			step++
			lvl := VRFidelityLevels[v.fidelity]
			if step%2 == 1 {
				frameStart = env.Now()
				return kernel.Compute{Cycles: float64(env.Rand.Jitter(int64(lvl.CyclesPerFrame), 0.08))}
			}
			env.Count("render_frames", 1)
			// Deadline pacing: sleep only the residual of the frame period.
			// An overloaded renderer (heavy fidelity at a low clock) runs
			// back to back, which is what drives the DVFS governor up.
			if spent := env.Now().Sub(frameStart); spent < lvl.Period {
				return kernel.Sleep{D: lvl.Period - spent}
			}
			return kernel.Compute{Cycles: 1}
		}
	}())
	return AppSpec{
		Name:   instanceName("vr"),
		Domain: "cpu",
		Desc:   "VR water-wave scene: gesture recognition + adaptive rendering (§6.4)",
		Threads: []ThreadSpec{
			{Name: "gesture", Core: 0, Prog: gesture},
			{Name: "render", Core: renderCore, Prog: render},
		},
	}
}
