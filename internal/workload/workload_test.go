package workload_test

import (
	"testing"

	psbox "psbox"
	"psbox/internal/workload"
)

func installOn(t *testing.T, sys *psbox.System, name string, saturate bool) *psbox.App {
	t.Helper()
	f, ok := workload.Catalog()[name]
	if !ok {
		t.Fatalf("no workload %q", name)
	}
	return workload.Install(sys.Kernel, f(sys.Kernel.CPU().Cores(), saturate))
}

func TestCatalogComplete(t *testing.T) {
	want := []string{"bodytrack", "browser", "browserw", "calib3d", "cube",
		"dedup", "dgemm", "magic", "monte", "scp", "sgemm", "triangle", "wget"}
	got := workload.Names()
	if len(got) != len(want) {
		t.Fatalf("catalog = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog = %v, want %v", got, want)
		}
	}
}

func TestCPUWorkloadsMakeProgress(t *testing.T) {
	for name, counter := range map[string]string{
		"calib3d": "kb", "bodytrack": "frames", "dedup": "chunks",
	} {
		sys := psbox.NewAM57(11)
		app := installOn(t, sys, name, false)
		sys.Run(2 * psbox.Second)
		if app.Counter(counter) == 0 {
			t.Errorf("%s made no progress", name)
		}
		if app.CPUTime() == 0 {
			t.Errorf("%s used no CPU", name)
		}
		// Periodic workloads must leave slack (they are rate-limited).
		if util := app.CPUTime().Seconds() / 2 / 2; util > 0.9 {
			t.Errorf("%s is not rate-limited: utilization %v", name, util)
		}
	}
}

func TestGPUWorkloadsSubmitCommands(t *testing.T) {
	for _, name := range []string{"browser", "magic", "cube", "triangle"} {
		sys := psbox.NewAM57(12)
		app := installOn(t, sys, name, false)
		sys.Run(2 * psbox.Second)
		if sys.Kernel.Accel("gpu").Completed(app.ID) == 0 {
			t.Errorf("%s retired no GPU commands", name)
		}
		if app.Counter("cmds") == 0 {
			t.Errorf("%s counted no commands", name)
		}
	}
}

func TestDSPWorkloadsSubmitCommands(t *testing.T) {
	for _, name := range []string{"sgemm", "dgemm", "monte"} {
		sys := psbox.NewAM57(13)
		app := installOn(t, sys, name, false)
		sys.Run(3 * psbox.Second)
		if sys.Kernel.Accel("dsp").Completed(app.ID) == 0 {
			t.Errorf("%s retired no DSP commands", name)
		}
		if app.Counter("gflops") == 0 {
			t.Errorf("%s counted no GFLOPs", name)
		}
	}
}

func TestWiFiWorkloadsTransmit(t *testing.T) {
	for _, name := range []string{"browserw", "scp", "wget"} {
		sys := psbox.NewBeagleBone(14)
		app := installOn(t, sys, name, false)
		sys.Run(3 * psbox.Second)
		if sys.Kernel.Net().SentBytes(app.ID) == 0 {
			t.Errorf("%s sent nothing", name)
		}
	}
}

func TestSaturatingVariantsUseMore(t *testing.T) {
	measure := func(saturate bool) float64 {
		sys := psbox.NewAM57(15)
		app := installOn(t, sys, "calib3d", saturate)
		sys.Run(1 * psbox.Second)
		return app.CPUTime().Seconds()
	}
	paced, sat := measure(false), measure(true)
	if sat < paced*1.5 {
		t.Fatalf("saturating variant barely used more CPU: %v vs %v", sat, paced)
	}
}

func TestInstanceNamesUnique(t *testing.T) {
	sys := psbox.NewAM57(16)
	a := installOn(t, sys, "calib3d", false)
	b := installOn(t, sys, "calib3d", false)
	if a.Name == b.Name {
		t.Fatal("co-run instances must have distinct names")
	}
}

func TestVRScenario(t *testing.T) {
	sys := psbox.NewAM57(17)
	vr := workload.NewVR(2)
	app := workload.Install(sys.Kernel, vr.Spec(2))
	sys.Run(2 * psbox.Second)
	if app.Counter("gesture_frames") == 0 || app.Counter("render_frames") == 0 {
		t.Fatal("both VR tasks should run")
	}
	fpsMedium := app.Counter("render_frames") / 2

	// Fidelity changes take effect.
	vr.SetFidelity(4)
	base := app.Counter("render_frames")
	sys.Run(2 * psbox.Second)
	fpsUltra := (app.Counter("render_frames") - base) / 2
	if fpsUltra <= fpsMedium {
		t.Fatalf("ultra fps %v should exceed medium %v", fpsUltra, fpsMedium)
	}
	// Clamping.
	vr.SetFidelity(99)
	if vr.Fidelity() != len(workload.VRFidelityLevels)-1 {
		t.Fatal("fidelity should clamp high")
	}
	vr.SetFidelity(-3)
	if vr.Fidelity() != 0 {
		t.Fatal("fidelity should clamp low")
	}
}

func TestVRPowerScalesWithFidelity(t *testing.T) {
	measure := func(level int) float64 {
		sys := psbox.NewAM57(18)
		vr := workload.NewVR(level)
		app := workload.Install(sys.Kernel, vr.Spec(2))
		_ = app
		sys.Run(2 * psbox.Second)
		return sys.Meter.Energy("cpu", 0, sys.Now())
	}
	low, high := measure(0), measure(4)
	if high < low*1.2 {
		t.Fatalf("fidelity barely moves energy: %v vs %v", low, high)
	}
}
