package workload_test

import (
	"testing"

	psbox "psbox"
	"psbox/internal/workload"
)

func TestSpinWorkload(t *testing.T) {
	sys := psbox.NewAM57(71)
	app := workload.Install(sys.Kernel, workload.Spin(0))
	sys.Run(200 * psbox.Millisecond)
	if got := app.CPUTime().Seconds(); got < 0.199 {
		t.Fatalf("spin used only %vs", got)
	}
}

func TestVRSplitSpecs(t *testing.T) {
	sys := psbox.NewAM57(72)
	vr := workload.NewVR(2)
	g := workload.Install(sys.Kernel, vr.GestureSpec(2))
	r := workload.Install(sys.Kernel, vr.RenderSpec(2))
	if g.ID == r.ID {
		t.Fatal("split specs must be distinct principals")
	}
	sys.Run(1 * psbox.Second)
	if g.Counter("gesture_frames") == 0 {
		t.Fatal("gesture principal idle")
	}
	if r.Counter("render_frames") == 0 {
		t.Fatal("render principal idle")
	}
	if g.Counter("render_frames") != 0 || r.Counter("gesture_frames") != 0 {
		t.Fatal("counters crossed principals")
	}
}

func TestVRInvalidFidelityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	workload.NewVR(99)
}

func TestAllWorkloadsSaturatingSmoke(t *testing.T) {
	// Every catalog workload must run in its saturating variant without
	// stalling or panicking, on the platform that hosts its domain.
	for _, name := range workload.Names() {
		f := workload.Catalog()[name]
		spec := f(1, true)
		var sys *psbox.System
		if spec.Domain == "wifi" {
			sys = psbox.NewBeagleBone(73)
		} else {
			sys = psbox.NewAM57(73)
		}
		app := workload.Install(sys.Kernel, f(sys.Kernel.CPU().Cores(), true))
		sys.Run(500 * psbox.Millisecond)
		if app.CPUTime() == 0 {
			t.Errorf("%s (saturating) never ran", name)
		}
	}
}

func TestWorkloadJitterIsPerTaskDeterministic(t *testing.T) {
	run := func() float64 {
		sys := psbox.NewAM57(74)
		app := workload.Install(sys.Kernel, workload.Bodytrack(2, false))
		sys.Run(1 * psbox.Second)
		return app.Counter("frames")
	}
	if run() != run() {
		t.Fatal("same seed diverged")
	}
}

func TestBrowserWiFiCountsPages(t *testing.T) {
	sys := psbox.NewBeagleBone(75)
	app := workload.Install(sys.Kernel, workload.BrowserWiFi(1, false))
	sys.Run(3 * psbox.Second)
	if app.Counter("pages") < 3 {
		t.Fatalf("pages = %v", app.Counter("pages"))
	}
	if app.Counter("kb") == 0 {
		t.Fatal("kb counter missing")
	}
}
