package workload

import (
	"psbox/internal/kernel"
	"psbox/internal/sim"
)

// BrowserWiFi models a Links browser fetching a page: a small request
// followed by a burst of response-sized segments, then think time. (Only
// the transmit side is modelled; the paper's prototype could not insulate
// reception either, §5.)
func BrowserWiFi(cores int, saturate bool) AppSpec {
	rest := 500 * sim.Millisecond
	if saturate {
		rest = 0
	}
	return AppSpec{
		Name:    instanceName("browserw"),
		Domain:  "wifi",
		Desc:    "A Links browser opening a Yahoo homepage",
		Sockets: 1,
		Threads: []ThreadSpec{{
			Name: "fetch",
			Core: 0 % cores,
			Prog: kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
				step := 0
				burst := 0
				return func(env *kernel.Env) kernel.Action {
					step++
					switch {
					case step%8 == 1:
						return kernel.Compute{Cycles: float64(env.Rand.Jitter(4e5, 0.2))}
					case step%8 == 2:
						return kernel.Send{Socket: 0, Bytes: int(env.Rand.Jitter(320, 0.2))}
					case step%8 >= 3 && step%8 <= 6:
						burst++
						return kernel.Send{Socket: 0, Bytes: int(env.Rand.Jitter(1200, 0.15))}
					case step%8 == 7:
						return kernel.AwaitNet{MaxBacklog: 0}
					default:
						env.Count("pages", 1)
						env.Count("kb", 5)
						return restAction(sim.Duration(env.Rand.Jitter(int64(rest), 0.25)))
					}
				}
			}()),
		}},
	}
}

// bulkTransfer builds a windowed bulk sender (scp/wget-style): it keeps up
// to window unsent bytes outstanding, counting throughput. Bulk senders
// select the high transmission power level (long-range/high-rate mode) —
// a lingering NIC power state that, unvirtualized, entangles the power of
// other apps' frames.
func bulkTransfer(name, desc string, pkt, window int, think sim.Duration,
	cores int, saturate bool) AppSpec {
	if saturate {
		think = 0
	}
	return AppSpec{
		Name:    instanceName(name),
		Domain:  "wifi",
		Desc:    desc,
		Sockets: 1,
		Threads: []ThreadSpec{{
			Name: "xfer",
			Core: 0 % cores,
			Prog: kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
				step := -1
				return func(env *kernel.Env) kernel.Action {
					step++
					if step == 0 {
						return kernel.SetTxLevel{Level: 1}
					}
					switch step % 4 {
					case 1:
						return kernel.Compute{Cycles: float64(env.Rand.Jitter(2e5, 0.15))}
					case 2:
						env.Count("bytes", float64(pkt))
						return kernel.Send{Socket: 0, Bytes: pkt}
					case 3:
						return kernel.AwaitNet{MaxBacklog: window}
					default:
						return restAction(think)
					}
				}
			}()),
		}},
	}
}

// SCP models transmitting a 50 MB file over ssh: steady windowed stream.
func SCP(cores int, saturate bool) AppSpec {
	return bulkTransfer("scp", "Transmitting a 50MB data file over ssh",
		1400, 4*1400, 0, cores, saturate)
}

// Wget models transmitting a 50 MB file over http: slightly larger
// segments, shallower window, small pacing gaps.
func Wget(cores int, saturate bool) AppSpec {
	return bulkTransfer("wget", "Transmitting a 50MB data file over http",
		1448, 2*1448, 2*sim.Millisecond, cores, saturate)
}
