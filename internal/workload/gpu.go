package workload

import (
	"psbox/internal/kernel"
	"psbox/internal/sim"
)

// BrowserGPU models a WebKit browser rendering a page (Fig. 5 "T"): light
// bursts of heterogeneous GPU commands — layout, paint, composite — every
// interaction interval. Distinct command kinds have distinct power
// signatures, which is what the §2.5 side channel exploits.
func BrowserGPU(cores int, saturate bool) AppSpec {
	rest := 180 * sim.Millisecond
	if saturate {
		rest = 0
	}
	return AppSpec{
		Name:   instanceName("browser"),
		Domain: "gpu",
		Desc:   "A webkit browser opening a Google homepage (TI am57 SDK)",
		Threads: []ThreadSpec{{
			Name: "render",
			Core: 0 % cores,
			Prog: kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
				step := 0
				return func(env *kernel.Env) kernel.Action {
					step++
					switch step % 6 {
					case 1:
						return kernel.Compute{Cycles: float64(env.Rand.Jitter(8e5, 0.2))}
					case 2:
						return kernel.SubmitAccel{Dev: "gpu", Kind: "layout",
							Work: float64(env.Rand.Jitter(800, 0.25)), DynW: 0.45}
					case 3:
						return kernel.SubmitAccel{Dev: "gpu", Kind: "paint",
							Work: float64(env.Rand.Jitter(1500, 0.25)), DynW: 0.60}
					case 4:
						return kernel.SubmitAccel{Dev: "gpu", Kind: "composite",
							Work: float64(env.Rand.Jitter(600, 0.2)), DynW: 0.50}
					case 5:
						return kernel.AwaitAccel{Dev: "gpu", MaxBacklog: 0}
					default:
						env.Count("cmds", 3)
						return restAction(sim.Duration(env.Rand.Jitter(int64(rest), 0.3)))
					}
				}
			}()),
		}},
	}
}

// renderLoop builds a frame-paced GPU renderer.
func renderLoop(name, desc, kind string, work float64, dynW float64,
	frame sim.Duration, cores int, saturate bool) AppSpec {
	rest := frame
	if saturate {
		rest = 0
	}
	return AppSpec{
		Name:   instanceName(name),
		Domain: "gpu",
		Desc:   desc,
		Threads: []ThreadSpec{{
			Name: "render",
			Core: 0 % cores,
			Prog: kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
				step := 0
				return func(env *kernel.Env) kernel.Action {
					step++
					switch step % 4 {
					case 1:
						return kernel.Compute{Cycles: float64(env.Rand.Jitter(4e5, 0.15))}
					case 2:
						return kernel.SubmitAccel{Dev: "gpu", Kind: kind,
							Work: float64(env.Rand.Jitter(int64(work), 0.1)), DynW: dynW}
					case 3:
						return kernel.AwaitAccel{Dev: "gpu", MaxBacklog: 0}
					default:
						env.Count("frames", 1)
						env.Count("cmds", 1)
						return restAction(rest)
					}
				}
			}()),
		}},
	}
}

// Magic models the PowerVR SDK "magic lantern" demo at 60 fps (Fig. 5 "V").
func Magic(cores int, saturate bool) AppSpec {
	return renderLoop("magic",
		`Rendering a "magic lantern" scene at 60fps (PowerVR SDK)`,
		"lantern", 6000, 0.70, 10*sim.Millisecond, cores, saturate)
}

// Cube models the Qt SDK rotating-cube scene at 60 fps (Fig. 5 "Q").
func Cube(cores int, saturate bool) AppSpec {
	return renderLoop("cube",
		"Rendering a rotating cube scene at 60fps (Qt SDK)",
		"cube", 2500, 0.50, 13*sim.Millisecond, cores, saturate)
}

// Triangle is the synthetic offscreen stressor drawing 100k triangles/sec:
// it keeps the GPU saturated regardless of the saturate flag.
func Triangle(cores int, saturate bool) AppSpec {
	return AppSpec{
		Name:   instanceName("triangle"),
		Domain: "gpu",
		Desc:   "A synthetic app drawing 100k triangles/sec offscreen",
		Threads: []ThreadSpec{{
			Name: "draw",
			Core: 1 % cores,
			Prog: kernel.ProgramFunc(func() func(*kernel.Env) kernel.Action {
				step := 0
				return func(env *kernel.Env) kernel.Action {
					step++
					switch step % 3 {
					case 1:
						return kernel.Compute{Cycles: 1e5}
					case 2:
						env.Count("cmds", 1)
						return kernel.SubmitAccel{Dev: "gpu", Kind: "tri",
							Work: float64(env.Rand.Jitter(30000, 0.05)), DynW: 0.85}
					default:
						// Keep the GPU ring deep, as a real triangle-storm
						// benchmark does; draining this backlog is what
						// makes a co-located sandbox expensive (§6.3).
						return kernel.AwaitAccel{Dev: "gpu", MaxBacklog: 5}
					}
				}
			}()),
		}},
	}
}
