// Package workload provides the benchmark applications of the paper's
// Fig. 5 as synthetic programs with matching resource signatures: CPU
// vision/compression pipelines, GPU rendering apps, DSP compute kernels,
// and WiFi transfer apps, plus the §6.4 VR scenario.
//
// Each workload is periodic by default (frame- or request-paced, as the
// real apps are); a zero period yields the saturating variant used in the
// throughput-fairness experiments.
package workload

import (
	"sort"

	"psbox/internal/kernel"
	"psbox/internal/sim"
)

// ThreadSpec is one thread of an app: a program pinned to a core.
type ThreadSpec struct {
	Name string
	Core int
	Prog kernel.Program
}

// AppSpec is an instantiable benchmark application.
type AppSpec struct {
	Name    string
	Domain  string // "cpu", "gpu", "dsp", "wifi"
	Desc    string // the Fig. 5 description
	Sockets int    // WiFi sockets to open
	Threads []ThreadSpec
}

// Install registers the app with a kernel and spawns its threads.
func Install(k *kernel.Kernel, spec AppSpec) *kernel.App {
	app := k.NewApp(spec.Name)
	for i := 0; i < spec.Sockets; i++ {
		app.OpenSocket()
	}
	for _, th := range spec.Threads {
		app.Spawn(th.Name, th.Core, th.Prog)
	}
	return app
}

// Factory builds an AppSpec for a platform with the given core count.
// Saturate selects the back-to-back variant.
type Factory func(cores int, saturate bool) AppSpec

// Catalog lists the Fig. 5 benchmarks by name.
func Catalog() map[string]Factory {
	return map[string]Factory{
		"bodytrack": Bodytrack,
		"calib3d":   Calib3D,
		"dedup":     Dedup,
		"browser":   BrowserGPU,
		"magic":     Magic,
		"cube":      Cube,
		"triangle":  Triangle,
		"sgemm":     SGEMM,
		"dgemm":     DGEMM,
		"monte":     Monte,
		"browserw":  BrowserWiFi,
		"scp":       SCP,
		"wget":      Wget,
	}
}

// Names lists the catalog in stable order.
func Names() []string {
	c := Catalog()
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// instanceName passes the base name through; the kernel suffixes every app
// with its ID, so co-running instances stay distinguishable and naming is
// deterministic per system (no global counters).
func instanceName(base string) string { return base }

// sleepOrNothing pads a periodic loop; zero duration means saturating.
func restAction(d sim.Duration) kernel.Action {
	if d <= 0 {
		return kernel.Compute{Cycles: 1} // negligible; keeps the loop legal
	}
	return kernel.Sleep{D: d}
}
