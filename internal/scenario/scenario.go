// Package scenario runs declarative simulation scenarios: a JSON document
// picks a platform, a set of workload instances (optionally sandboxed),
// and a duration; the runner reports per-app throughput, sandbox
// observations, and rail energies. It is the repository's "driver" for
// exploring configurations beyond the canned experiments.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	psbox "psbox"
	"psbox/internal/core"
	"psbox/internal/workload"
)

// AppSpec is one workload instance in a scenario.
type AppSpec struct {
	// Name optionally overrides the instance's app name (instances of a
	// Count > 1 spec get a -N suffix). Non-empty names must be unique
	// across the scenario.
	Name string `json:"name,omitempty"`
	// Workload names a Fig. 5 benchmark from the catalog.
	Workload string `json:"workload"`
	// Count instantiates this many identical instances (default 1).
	Count int `json:"count,omitempty"`
	// Saturate selects the back-to-back variant.
	Saturate bool `json:"saturate,omitempty"`
	// Box lists hardware scopes to sandbox each instance on; empty means
	// unboxed.
	Box []string `json:"box,omitempty"`
}

// Spec is a full scenario.
type Spec struct {
	// Platform: "am57", "beaglebone" or "mobile".
	Platform string `json:"platform"`
	// Seed for deterministic replay.
	Seed uint64 `json:"seed"`
	// DurationMs is the simulated run length.
	DurationMs int       `json:"duration_ms"`
	Apps       []AppSpec `json:"apps"`
}

// Parse reads and validates a scenario document.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ValidationError pinpoints a rejected scenario field. Field is the JSON
// path of the offender (e.g. "apps[3].workload"); Index is the offending
// app's position in the apps array, or -1 for document-level fields —
// tools can highlight the exact entry instead of making the user scan the
// document.
type ValidationError struct {
	Field string
	Index int
	Msg   string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("scenario: %s: %s", e.Field, e.Msg)
}

func (s *Spec) validate() error {
	switch s.Platform {
	case "am57", "beaglebone", "mobile":
	default:
		return &ValidationError{Field: "platform", Index: -1,
			Msg: fmt.Sprintf("unknown platform %q (am57, beaglebone, mobile)", s.Platform)}
	}
	if s.DurationMs <= 0 {
		return &ValidationError{Field: "duration_ms", Index: -1, Msg: "must be positive"}
	}
	if len(s.Apps) == 0 {
		return &ValidationError{Field: "apps", Index: -1, Msg: "need at least one app"}
	}
	catalog := workload.Catalog()
	seen := map[string]int{}
	for i, a := range s.Apps {
		if a.Name != "" {
			if j, dup := seen[a.Name]; dup {
				return &ValidationError{Field: fmt.Sprintf("apps[%d].name", i), Index: i,
					Msg: fmt.Sprintf("duplicate app name %q (first declared at apps[%d])", a.Name, j)}
			}
			seen[a.Name] = i
		}
		if _, ok := catalog[a.Workload]; !ok {
			return &ValidationError{Field: fmt.Sprintf("apps[%d].workload", i), Index: i,
				Msg: fmt.Sprintf("unknown workload %q (see fig5 for the catalog)", a.Workload)}
		}
		if a.Count < 0 {
			return &ValidationError{Field: fmt.Sprintf("apps[%d].count", i), Index: i,
				Msg: "negative count"}
		}
		for _, h := range a.Box {
			switch core.HW(h) {
			case core.HWCPU, core.HWGPU, core.HWDSP, core.HWWiFi,
				core.HWDisplay, core.HWGPS, core.HWDRAM:
			default:
				return &ValidationError{Field: fmt.Sprintf("apps[%d].box", i), Index: i,
					Msg: fmt.Sprintf("unknown scope %q", h)}
			}
		}
	}
	return nil
}

// AppReport is one instance's outcome.
type AppReport struct {
	Name     string             `json:"name"`
	Workload string             `json:"workload"`
	Boxed    []string           `json:"boxed,omitempty"`
	Counters map[string]float64 `json:"counters,omitempty"`
	// CPUTimeS is on-CPU seconds consumed.
	CPUTimeS float64 `json:"cpu_time_s"`
	// BoxMJ is the sandbox's observed energy, per scope, if boxed.
	BoxMJ map[string]float64 `json:"box_mj,omitempty"`
}

// Report is a scenario's outcome.
type Report struct {
	Platform string             `json:"platform"`
	Seed     uint64             `json:"seed"`
	SimTimeS float64            `json:"sim_time_s"`
	Apps     []AppReport        `json:"apps"`
	RailsMJ  map[string]float64 `json:"rails_mj"`
}

// counterNames is the set of throughput counters workloads emit.
var counterNames = []string{"kb", "frames", "chunks", "cmds", "gflops", "bytes", "pages"}

// Run executes the scenario.
func Run(s *Spec) (*Report, error) {
	rep, _, err := RunWithSystem(s, nil)
	return rep, err
}

// RunWithSystem executes the scenario like Run, but calls setup (when
// non-nil) on the freshly assembled system before any apps are installed
// — the hook point for enabling tracing or registering extra snapshotters
// — and returns the driven system alongside the report so callers can
// read traces, metrics, and blame timelines off it.
func RunWithSystem(s *Spec, setup func(*psbox.System)) (*Report, *psbox.System, error) {
	var sys *psbox.System
	switch s.Platform {
	case "am57":
		sys = psbox.NewAM57(s.Seed)
	case "beaglebone":
		sys = psbox.NewBeagleBone(s.Seed)
	case "mobile":
		sys = psbox.NewMobile(s.Seed)
	}
	if setup != nil {
		setup(sys)
	}
	catalog := workload.Catalog()
	type inst struct {
		app  *psbox.App
		spec AppSpec
		box  *core.Box
	}
	var insts []inst
	for _, a := range s.Apps {
		count := a.Count
		if count == 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			ws := catalog[a.Workload](sys.Kernel.CPU().Cores(), a.Saturate)
			if a.Name != "" {
				ws.Name = a.Name
				if count > 1 {
					ws.Name = fmt.Sprintf("%s-%d", a.Name, i)
				}
			}
			app := workload.Install(sys.Kernel, ws)
			it := inst{app: app, spec: a}
			if len(a.Box) > 0 {
				scopes := make([]core.HW, 0, len(a.Box))
				for _, h := range a.Box {
					scopes = append(scopes, core.HW(h))
				}
				box, err := sys.Sandbox.Create(app, scopes...)
				if err != nil {
					return nil, nil, fmt.Errorf("scenario: boxing %s: %w", app.Name, err)
				}
				box.Enter()
				it.box = box
			}
			insts = append(insts, it)
		}
	}
	sys.Run(psbox.Duration(s.DurationMs) * psbox.Millisecond)

	rep := &Report{
		Platform: s.Platform,
		Seed:     s.Seed,
		SimTimeS: sys.Now().Seconds(),
		RailsMJ:  map[string]float64{},
	}
	for _, rail := range sys.Meter.Rails() {
		rep.RailsMJ[rail] = sys.Meter.Energy(rail, 0, sys.Now()) * 1000
	}
	for _, it := range insts {
		ar := AppReport{
			Name:     it.app.Name,
			Workload: it.spec.Workload,
			Boxed:    it.spec.Box,
			CPUTimeS: it.app.CPUTime().Seconds(),
			Counters: map[string]float64{},
		}
		for _, c := range counterNames {
			if v := it.app.Counter(c); v != 0 {
				ar.Counters[c] = v
			}
		}
		if it.box != nil {
			ar.BoxMJ = map[string]float64{}
			for _, h := range it.box.HW() {
				ar.BoxMJ[string(h)] = it.box.ReadScope(h) * 1000
			}
		}
		rep.Apps = append(rep.Apps, ar)
	}
	return rep, sys, nil
}

// Render prints a human-readable report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "scenario: platform=%s seed=%d simulated %.2fs\n\n", r.Platform, r.Seed, r.SimTimeS)
	fmt.Fprintf(w, "%-16s %-10s %10s  %-24s %s\n", "app", "workload", "cpu (s)", "throughput", "box observation (mJ)")
	for _, a := range r.Apps {
		var thr []string
		keys := make([]string, 0, len(a.Counters))
		for k := range a.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			thr = append(thr, fmt.Sprintf("%s=%.0f", k, a.Counters[k]))
		}
		var boxed []string
		bkeys := make([]string, 0, len(a.BoxMJ))
		for k := range a.BoxMJ {
			bkeys = append(bkeys, k)
		}
		sort.Strings(bkeys)
		for _, k := range bkeys {
			boxed = append(boxed, fmt.Sprintf("%s=%.1f", k, a.BoxMJ[k]))
		}
		fmt.Fprintf(w, "%-16s %-10s %10.3f  %-24s %s\n",
			a.Name, a.Workload, a.CPUTimeS, strings.Join(thr, " "), strings.Join(boxed, " "))
	}
	fmt.Fprintf(w, "\nrail energies (mJ):")
	rkeys := make([]string, 0, len(r.RailsMJ))
	for k := range r.RailsMJ {
		rkeys = append(rkeys, k)
	}
	sort.Strings(rkeys)
	for _, k := range rkeys {
		fmt.Fprintf(w, " %s=%.1f", k, r.RailsMJ[k])
	}
	fmt.Fprintln(w)
}
