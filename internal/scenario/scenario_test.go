package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func parse(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseValidScenario(t *testing.T) {
	s := parse(t, `{
		"platform": "am57", "seed": 7, "duration_ms": 100,
		"apps": [
			{"workload": "calib3d", "box": ["cpu"]},
			{"workload": "magic", "count": 2, "saturate": true}
		]
	}`)
	if s.Platform != "am57" || s.Seed != 7 || len(s.Apps) != 2 {
		t.Fatalf("spec = %+v", s)
	}
}

func TestParseRejections(t *testing.T) {
	bad := map[string]string{
		"platform": `{"platform":"pc","duration_ms":1,"apps":[{"workload":"magic"}]}`,
		"duration": `{"platform":"am57","duration_ms":0,"apps":[{"workload":"magic"}]}`,
		"no apps":  `{"platform":"am57","duration_ms":1,"apps":[]}`,
		"workload": `{"platform":"am57","duration_ms":1,"apps":[{"workload":"doom"}]}`,
		"scope":    `{"platform":"am57","duration_ms":1,"apps":[{"workload":"magic","box":["npu"]}]}`,
		"count":    `{"platform":"am57","duration_ms":1,"apps":[{"workload":"magic","count":-1}]}`,
		"field":    `{"platform":"am57","duration_ms":1,"apps":[{"workload":"magic"}],"speed":9}`,
		"not json": `platform: am57`,
	}
	for name, doc := range bad {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: should be rejected", name)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	s := parse(t, `{
		"platform": "am57", "seed": 3, "duration_ms": 800,
		"apps": [
			{"workload": "calib3d", "box": ["cpu"]},
			{"workload": "bodytrack"},
			{"workload": "magic", "count": 2}
		]
	}`)
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Apps) != 4 {
		t.Fatalf("apps = %d", len(rep.Apps))
	}
	if rep.SimTimeS != 0.8 {
		t.Fatalf("sim time = %v", rep.SimTimeS)
	}
	boxed := rep.Apps[0]
	if boxed.BoxMJ["cpu"] <= 0 {
		t.Fatalf("boxed observation = %v", boxed.BoxMJ)
	}
	if boxed.Counters["kb"] == 0 {
		t.Fatal("boxed app made no progress")
	}
	for _, a := range rep.Apps[1:] {
		if a.BoxMJ != nil {
			t.Fatalf("%s should not be boxed", a.Name)
		}
		if a.CPUTimeS <= 0 {
			t.Fatalf("%s used no CPU", a.Name)
		}
	}
	for _, rail := range []string{"cpu", "gpu", "dsp"} {
		if rep.RailsMJ[rail] <= 0 {
			t.Fatalf("rail %s energy missing", rail)
		}
	}
}

func TestRunBoxScopeMismatch(t *testing.T) {
	// WiFi scope on a platform without a NIC surfaces as a run error.
	s := parse(t, `{
		"platform": "am57", "seed": 1, "duration_ms": 10,
		"apps": [{"workload": "calib3d", "box": ["wifi"]}]
	}`)
	if _, err := Run(s); err == nil {
		t.Fatal("expected scope error on am57")
	}
}

func TestRunDeterministic(t *testing.T) {
	doc := `{
		"platform": "beaglebone", "seed": 9, "duration_ms": 500,
		"apps": [{"workload": "scp"}, {"workload": "browserw", "box": ["wifi"]}]
	}`
	r1, err := Run(parse(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(parse(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Fatal("same scenario diverged")
	}
}

func TestRenderAndJSON(t *testing.T) {
	s := parse(t, `{
		"platform": "mobile", "seed": 2, "duration_ms": 300,
		"apps": [{"workload": "cube", "box": ["gpu"]}]
	}`)
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep.Render(&b)
	out := b.String()
	for _, want := range []string{"platform=mobile", "cube", "gpu=", "rail energies"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}

// TestTypedValidationErrors: rejections carry the offending field's JSON
// path and its position in the apps array, so tools can point at the
// exact entry.
func TestTypedValidationErrors(t *testing.T) {
	cases := []struct {
		doc   string
		field string
		index int
	}{
		{`{"platform":"pc","duration_ms":1,"apps":[{"workload":"magic"}]}`,
			"platform", -1},
		{`{"platform":"am57","duration_ms":1,"apps":[{"workload":"magic"},{"workload":"doom"}]}`,
			"apps[1].workload", 1},
		{`{"platform":"am57","duration_ms":1,"apps":[
			{"name":"a","workload":"magic"},{"workload":"magic"},{"name":"a","workload":"magic"}]}`,
			"apps[2].name", 2},
		{`{"platform":"am57","duration_ms":1,"apps":[{"workload":"magic","box":["npu"]}]}`,
			"apps[0].box", 0},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.doc))
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: error %v, want *ValidationError", tc.field, err)
			continue
		}
		if ve.Field != tc.field || ve.Index != tc.index {
			t.Errorf("got field %q index %d, want %q %d (%v)", ve.Field, ve.Index, tc.field, tc.index, ve)
		}
		if ve.Error() == "" || !strings.HasPrefix(ve.Error(), "scenario: ") {
			t.Errorf("unhelpful message %q", ve.Error())
		}
	}
}

// TestNamedInstances: a custom name carries into the report; Count > 1
// fans out with -N suffixes.
func TestNamedInstances(t *testing.T) {
	s := parse(t, `{
		"platform": "am57", "seed": 3, "duration_ms": 50,
		"apps": [
			{"name": "tracker", "workload": "bodytrack"},
			{"name": "worker", "workload": "magic", "count": 2}
		]
	}`)
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, a := range rep.Apps {
		// The kernel suffixes every app with its #ID; the declared name is
		// the part before it.
		names = append(names, strings.SplitN(a.Name, "#", 2)[0])
	}
	want := []string{"tracker", "worker-0", "worker-1"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("names = %v, want %v", names, want)
	}
}
