package faults

import "psbox/internal/snapshot"

// Snapshot encodes the injector: its campaign randomness stream, the
// registered target names (each kept sorted), and the fault log.
func (in *Injector) Snapshot(enc *snapshot.Encoder) {
	in.rnd.Snapshot(enc)
	enc.Len(len(in.accelNames))
	for _, n := range in.accelNames {
		enc.Str(n)
	}
	enc.Len(len(in.nicNames))
	for _, n := range in.nicNames {
		enc.Str(n)
	}
	enc.Len(len(in.cpuNames))
	for _, n := range in.cpuNames {
		enc.Str(n)
	}
	enc.Bool(in.sandbox != nil)
	enc.Len(len(in.log))
	for _, e := range in.log {
		enc.I64(int64(e.At))
		enc.Str(string(e.Kind))
		enc.Str(e.Target)
		enc.Str(e.Detail)
	}
}

// Restore verifies the live injector against a checkpoint section.
func (in *Injector) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, in.Snapshot) }
