// Package faults is the deterministic fault-injection layer: it schedules
// hardware failures on the simulation engine so that a seeded run hits the
// exact same faults at the exact same instants, every time. The faults
// exercise the recovery machinery above them — the kernel accelerator
// watchdog, the packet scheduler's link-flap retries, pending-DVFS
// application after transition stalls, and the virtual meters' degraded
// mode over DAQ dropouts.
package faults

import (
	"fmt"
	"sort"

	"psbox/internal/hw/accelhw"
	"psbox/internal/hw/cpu"
	"psbox/internal/hw/nic"
	"psbox/internal/meter"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// Kind names one class of injected fault.
type Kind string

// The four fault kinds.
const (
	// AccelHang wedges the command at the head of an accelerator's
	// execution units (or the next dispatched one): it never raises its
	// completion interrupt until the device is reset.
	AccelHang Kind = "accel-hang"

	// NICFlap drops the wireless link for a spell; frames in flight are
	// lost and must be retransmitted.
	NICFlap Kind = "nic-flap"

	// DVFSStall freezes a CPU's operating point mid-transition: frequency
	// requests issued during the stall latch and apply when it ends.
	DVFSStall Kind = "dvfs-stall"

	// MeterDropout loses a window of one DAQ channel's samples.
	MeterDropout Kind = "meter-dropout"

	// SandboxCrash kills a supervised sandbox session by name: its tasks
	// die abruptly and the sandbox supervisor's restart/quarantine
	// machinery takes over.
	SandboxCrash Kind = "sandbox-crash"
)

// Event is one injected fault, recorded at the instant it fired.
type Event struct {
	At     sim.Time
	Kind   Kind
	Target string
	Detail string
}

// String renders the event in the stable one-line form the determinism
// harness diffs across runs.
func (e Event) String() string {
	return fmt.Sprintf("%12d %-13s %-8s %s", int64(e.At), e.Kind, e.Target, e.Detail)
}

// Injector owns fault scheduling for one simulated system. All injection
// goes through the sim engine and (for randomized campaigns) a seeded
// generator, so a fault schedule is a pure function of the seed.
type Injector struct {
	eng *sim.Engine
	rnd *sim.Rand

	accels     map[string]*accelhw.Device
	accelNames []string
	nics       map[string]*nic.NIC
	nicNames   []string
	cpus       map[string]*cpu.CPU
	cpuNames   []string
	m          *meter.Meter
	sandbox    CrashTarget

	log []Event

	// Observability (nil-safe; the bus snapshots itself).
	bus *obs.Bus
}

// SetBus mirrors the fault log onto a bus: every recorded fault also
// becomes a trace instant.
func (in *Injector) SetBus(b *obs.Bus) { in.bus = b }

// New builds an injector over a simulation engine, seeded for randomized
// campaigns. Targets are registered afterwards.
func New(eng *sim.Engine, seed uint64) *Injector {
	return &Injector{
		eng:    eng,
		rnd:    sim.NewRand(seed ^ 0xfa17b0c5),
		accels: make(map[string]*accelhw.Device),
		nics:   make(map[string]*nic.NIC),
		cpus:   make(map[string]*cpu.CPU),
	}
}

// RegisterAccel makes an accelerator device a hang target.
func (in *Injector) RegisterAccel(name string, d *accelhw.Device) {
	in.accels[name] = d
	in.accelNames = append(in.accelNames, name)
	sort.Strings(in.accelNames)
}

// RegisterNIC makes a NIC a link-flap target.
func (in *Injector) RegisterNIC(name string, n *nic.NIC) {
	in.nics[name] = n
	in.nicNames = append(in.nicNames, name)
	sort.Strings(in.nicNames)
}

// RegisterCPU makes a CPU a DVFS-stall target.
func (in *Injector) RegisterCPU(name string, c *cpu.CPU) {
	in.cpus[name] = c
	in.cpuNames = append(in.cpuNames, name)
	sort.Strings(in.cpuNames)
}

// RegisterMeter makes the DAQ a sample-dropout target.
func (in *Injector) RegisterMeter(m *meter.Meter) { in.m = m }

// CrashTarget is the sandbox manager's crash-injection surface: kill the
// named live session, reporting whether one existed.
type CrashTarget interface {
	InjectCrash(name string) bool
}

// RegisterSandbox makes a sandbox manager a session-crash target.
func (in *Injector) RegisterSandbox(t CrashTarget) { in.sandbox = t }

func (in *Injector) record(kind Kind, target, detail string) {
	in.log = append(in.log, Event{At: in.eng.Now(), Kind: kind, Target: target, Detail: detail})
	in.bus.Instant(obs.CatFault, string(kind), 0, int64(len(in.log)), "", target)
	in.bus.Count("faults.injected", 0, "", 1)
}

// HangAccelAt schedules an AccelHang on a registered device.
func (in *Injector) HangAccelAt(at sim.Time, dev string) {
	d, ok := in.accels[dev]
	if !ok {
		panic(fmt.Sprintf("faults: no accelerator %q registered", dev))
	}
	in.eng.At(at, func(sim.Time) {
		if d.InjectHang() {
			in.record(AccelHang, dev, "command wedged")
		} else {
			in.record(AccelHang, dev, "armed for next dispatch")
		}
	})
}

// FlapLinkAt schedules a NICFlap: the link goes down at `at` and comes
// back after downFor.
func (in *Injector) FlapLinkAt(at sim.Time, dev string, downFor sim.Duration) {
	n, ok := in.nics[dev]
	if !ok {
		panic(fmt.Sprintf("faults: no NIC %q registered", dev))
	}
	if downFor <= 0 {
		panic("faults: link flap needs a positive down time")
	}
	in.eng.At(at, func(sim.Time) {
		if !n.LinkUp() {
			in.record(NICFlap, dev, "already down; extended")
		} else {
			n.SetLink(false)
			in.record(NICFlap, dev, fmt.Sprintf("down for %v", downFor))
		}
	})
	in.eng.At(at.Add(downFor), func(sim.Time) {
		if !n.LinkUp() {
			n.SetLink(true)
		}
	})
}

// StallDVFSAt schedules a DVFSStall on a registered CPU.
func (in *Injector) StallDVFSAt(at sim.Time, name string, d sim.Duration) {
	c, ok := in.cpus[name]
	if !ok {
		panic(fmt.Sprintf("faults: no CPU %q registered", name))
	}
	if d <= 0 {
		panic("faults: DVFS stall needs a positive duration")
	}
	in.eng.At(at, func(sim.Time) {
		c.InjectDVFSStall(d)
		in.record(DVFSStall, name, fmt.Sprintf("stalled for %v", d))
	})
}

// DropMeterAt schedules a MeterDropout: rail's samples over [at, at+d)
// are lost.
func (in *Injector) DropMeterAt(at sim.Time, rail string, d sim.Duration) {
	if in.m == nil {
		panic("faults: no meter registered")
	}
	if d <= 0 {
		panic("faults: meter dropout needs a positive duration")
	}
	in.eng.At(at, func(now sim.Time) {
		in.m.InjectDropout(rail, now, now.Add(d))
		in.record(MeterDropout, rail, fmt.Sprintf("samples lost for %v", d))
	})
}

// CrashSessionAt schedules a SandboxCrash on the named session. Sessions
// come and go at runtime, so (unlike hardware targets) the name is
// resolved at firing time; a miss is recorded, not a panic.
func (in *Injector) CrashSessionAt(at sim.Time, name string) {
	if in.sandbox == nil {
		panic("faults: no sandbox manager registered")
	}
	in.eng.At(at, func(sim.Time) {
		if in.sandbox.InjectCrash(name) {
			in.record(SandboxCrash, name, "session killed")
		} else {
			in.record(SandboxCrash, name, "no live session")
		}
	})
}

// Campaign parameterizes a randomized fault schedule over one horizon.
// Zero counts skip a kind; kinds without a registered target are skipped
// regardless.
type Campaign struct {
	Horizon sim.Duration

	AccelHangs    int
	NICFlaps      int
	DVFSStalls    int
	MeterDropouts int

	// FlapDownMax / StallMax / DropoutMax bound the drawn durations
	// (minimum 1 ms each; defaults 20 ms when zero).
	FlapDownMax sim.Duration
	StallMax    sim.Duration
	DropoutMax  sim.Duration
}

func (c Campaign) flapMax() sim.Duration  { return defDur(c.FlapDownMax) }
func (c Campaign) stallMax() sim.Duration { return defDur(c.StallMax) }
func (c Campaign) dropMax() sim.Duration  { return defDur(c.DropoutMax) }

func defDur(d sim.Duration) sim.Duration {
	if d <= 0 {
		return 20 * sim.Millisecond
	}
	return d
}

// Randomize schedules a campaign's faults at seeded-random instants over
// [now, now+Horizon). The draw order is fixed (kind by kind, sorted target
// names), so one seed always yields one schedule.
func (in *Injector) Randomize(c Campaign) {
	if c.Horizon <= 0 {
		panic("faults: campaign needs a positive horizon")
	}
	now := in.eng.Now()
	at := func() sim.Time { return now.Add(sim.Duration(in.rnd.Int63n(int64(c.Horizon)))) }
	dur := func(max sim.Duration) sim.Duration {
		return sim.Millisecond + sim.Duration(in.rnd.Int63n(int64(max)))
	}
	if len(in.accelNames) > 0 {
		for i := 0; i < c.AccelHangs; i++ {
			in.HangAccelAt(at(), in.accelNames[in.rnd.Intn(len(in.accelNames))])
		}
	}
	if len(in.nicNames) > 0 {
		for i := 0; i < c.NICFlaps; i++ {
			in.FlapLinkAt(at(), in.nicNames[in.rnd.Intn(len(in.nicNames))], dur(c.flapMax()))
		}
	}
	if len(in.cpuNames) > 0 {
		for i := 0; i < c.DVFSStalls; i++ {
			in.StallDVFSAt(at(), in.cpuNames[in.rnd.Intn(len(in.cpuNames))], dur(c.stallMax()))
		}
	}
	if in.m != nil {
		rails := in.m.Rails()
		for i := 0; i < c.MeterDropouts; i++ {
			in.DropMeterAt(at(), rails[in.rnd.Intn(len(rails))], dur(c.dropMax()))
		}
	}
}

// Log returns the faults that have fired so far, in firing order.
func (in *Injector) Log() []Event {
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}

// FormatLog renders the fired faults one per line — the determinism
// harness diffs this across same-seed runs.
func (in *Injector) FormatLog() string {
	s := ""
	for _, e := range in.log {
		s += e.String() + "\n"
	}
	return s
}
