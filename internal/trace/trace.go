// Package trace renders simulation activity for humans: ASCII power plots
// (the Fig. 6/7/9 curves) and ASCII Gantt charts of resource multiplexing
// (the Fig. 7 schedules), plus CSV export for external plotting.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// Series is one named power trace.
type Series struct {
	Name    string
	Samples []power.Sample
}

// Plot renders series as an ASCII chart of the given size. Multiple series
// are overlaid with distinct glyphs.
func Plot(series []Series, from, to sim.Time, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#'}
	span := to.Sub(from)
	if span <= 0 || len(series) == 0 {
		return "(empty plot)\n"
	}
	var maxW float64
	for _, s := range series {
		for _, p := range s.Samples {
			if p.W > maxW {
				maxW = p.W
			}
		}
	}
	if maxW <= 0 {
		maxW = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Samples {
			if p.T < from || p.T >= to {
				continue
			}
			x := int(int64(p.T.Sub(from)) * int64(width) / int64(span))
			y := height - 1 - int(p.W/maxW*float64(height-1))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6.2fW ┤\n", maxW)
	for _, row := range grid {
		b.WriteString("        │")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("        └" + strings.Repeat("─", width) + "\n")
	fmt.Fprintf(&b, "        %v%s%v\n", from, strings.Repeat(" ", max(1, width-14)), to)
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// DownsampleRail converts a rail's exact breakpoints into a fixed-step
// average-power series, suitable for plotting.
func DownsampleRail(r *power.Rail, from, to sim.Time, step sim.Duration) []power.Sample {
	var out []power.Sample
	for t := from; t < to; t = t.Add(step) {
		end := t.Add(step)
		if end > to {
			end = to
		}
		e := r.EnergyBetween(t, end)
		out = append(out, power.Sample{T: t, W: e / end.Sub(t).Seconds()})
	}
	return out
}

// DownsampleSamples re-buckets a sample series into step-sized averages.
func DownsampleSamples(in []power.Sample, from, to sim.Time, period, step sim.Duration) []power.Sample {
	n := int(to.Sub(from) / step)
	if n <= 0 {
		return nil
	}
	sum := make([]float64, n)
	cnt := make([]int, n)
	for _, s := range in {
		if s.T < from || s.T >= to {
			continue
		}
		b := int(s.T.Sub(from) / step)
		if b >= 0 && b < n {
			sum[b] += s.W
			cnt[b]++
		}
	}
	out := make([]power.Sample, n)
	for i := range out {
		w := 0.0
		if cnt[i] > 0 {
			w = sum[i] / float64(cnt[i])
		}
		out[i] = power.Sample{T: from.Add(sim.Duration(i) * step), W: w}
	}
	return out
}

// Span is one occupancy interval on a Gantt lane.
type Span struct {
	Label      string
	Start, End sim.Time
}

// Gantt accumulates per-lane occupancy spans (e.g. per CPU core, or per
// accelerator slot).
type Gantt struct {
	lanes map[string][]Span
	order []string
}

// NewGantt builds an empty chart.
func NewGantt() *Gantt { return &Gantt{lanes: make(map[string][]Span)} }

// Add records one span on a lane.
func (g *Gantt) Add(lane, label string, start, end sim.Time) {
	if end <= start {
		return
	}
	if _, ok := g.lanes[lane]; !ok {
		g.order = append(g.order, lane)
	}
	g.lanes[lane] = append(g.lanes[lane], Span{Label: label, Start: start, End: end})
}

// Lanes lists lanes in insertion order.
func (g *Gantt) Lanes() []string { return g.order }

// Spans returns one lane's spans.
func (g *Gantt) Spans(lane string) []Span { return g.lanes[lane] }

// Render draws the chart; each distinct label gets a letter, idle is '.'.
func (g *Gantt) Render(from, to sim.Time, width int) string {
	if width < 10 {
		width = 10
	}
	span := to.Sub(from)
	if span <= 0 {
		return "(empty gantt)\n"
	}
	// Stable label→glyph assignment.
	labelSet := map[string]bool{}
	for _, lane := range g.order {
		for _, s := range g.lanes[lane] {
			labelSet[s.Label] = true
		}
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	glyph := map[string]byte{}
	for i, l := range labels {
		glyph[l] = byte('A' + i%26)
	}
	var b strings.Builder
	nameW := 0
	for _, lane := range g.order {
		if len(lane) > nameW {
			nameW = len(lane)
		}
	}
	for _, lane := range g.order {
		row := []byte(strings.Repeat(".", width))
		for _, s := range g.lanes[lane] {
			lo, hi := s.Start, s.End
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi <= lo {
				continue
			}
			x0 := int(int64(lo.Sub(from)) * int64(width) / int64(span))
			x1 := int(int64(hi.Sub(from)) * int64(width) / int64(span))
			if x1 == x0 {
				x1 = x0 + 1
			}
			for x := x0; x < x1 && x < width; x++ {
				row[x] = glyph[s.Label]
			}
		}
		fmt.Fprintf(&b, "%-*s │%s│\n", nameW, lane, row)
	}
	fmt.Fprintf(&b, "%-*s  %v → %v\n", nameW, "", from, to)
	for _, l := range labels {
		fmt.Fprintf(&b, "%-*s  %c = %s\n", nameW, "", glyph[l], l)
	}
	return b.String()
}

// WriteCSV emits series as a long-format CSV (series,time_s,watts).
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "series,time_s,watts"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Samples {
			if _, err := fmt.Fprintf(w, "%s,%.9f,%.6f\n", s.Name, p.T.Seconds(), p.W); err != nil {
				return err
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
