package trace

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

func TestPlotRenders(t *testing.T) {
	s := []Series{{
		Name: "cpu",
		Samples: []power.Sample{
			{T: 0, W: 1}, {T: 100, W: 2}, {T: 200, W: 0.5},
		},
	}}
	out := Plot(s, 0, 300, 30, 6)
	if !strings.Contains(out, "cpu") || !strings.Contains(out, "*") {
		t.Fatalf("plot missing content:\n%s", out)
	}
	if Plot(nil, 0, 0, 10, 4) != "(empty plot)\n" {
		t.Fatal("empty plot handling")
	}
}

// The legend must map EVERY series name to its plotting glyph, cycling
// through the glyph set when there are more series than glyphs.
func TestPlotLegendMapsAllSeries(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	var series []Series
	for i, n := range names {
		series = append(series, Series{Name: n, Samples: []power.Sample{{T: sim.Time(i * 10), W: float64(i + 1)}}})
	}
	out := Plot(series, 0, 100, 30, 6)
	glyphs := []byte{'*', 'o', '+', 'x', '#'}
	for i, n := range names {
		want := "        " + string(glyphs[i%len(glyphs)]) + " " + n + "\n"
		if !strings.Contains(out, want) {
			t.Errorf("legend line %q missing:\n%s", want, out)
		}
	}
	// The sixth series wraps back to '*'.
	if !strings.Contains(out, "        * zeta\n") {
		t.Errorf("glyph wrap-around missing:\n%s", out)
	}
}

func TestDownsampleRail(t *testing.T) {
	e := sim.NewEngine()
	r := power.NewRail(e, "x", 1)
	e.At(sim.Time(50*sim.Millisecond), func(sim.Time) { r.Set(3) })
	e.Run(sim.Time(100 * sim.Millisecond))
	s := DownsampleRail(r, 0, sim.Time(100*sim.Millisecond), 25*sim.Millisecond)
	if len(s) != 4 {
		t.Fatalf("buckets = %d", len(s))
	}
	if s[0].W != 1 || s[3].W < 2.999 || s[3].W > 3.001 {
		t.Fatalf("bucket values: %+v", s)
	}
}

func TestDownsampleSamples(t *testing.T) {
	in := []power.Sample{
		{T: 0, W: 1}, {T: 10, W: 3}, {T: 30, W: 5},
	}
	out := DownsampleSamples(in, 0, 40, 10, 20)
	if len(out) != 2 {
		t.Fatalf("buckets = %d", len(out))
	}
	if out[0].W != 2 || out[1].W != 5 {
		t.Fatalf("bucket averages: %+v", out)
	}
}

func TestGanttRender(t *testing.T) {
	g := NewGantt()
	g.Add("core0", "calib3d", 0, 50)
	g.Add("core0", "bodytrack", 50, 100)
	g.Add("core1", "calib3d", 0, 100)
	g.Add("core1", "nothing", 10, 10) // dropped
	out := g.Render(0, 100, 40)
	if !strings.Contains(out, "core0") || !strings.Contains(out, "core1") {
		t.Fatalf("gantt missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "= calib3d") || !strings.Contains(out, "= bodytrack") {
		t.Fatalf("gantt missing legend:\n%s", out)
	}
	if len(g.Lanes()) != 2 || len(g.Spans("core0")) != 2 {
		t.Fatal("span bookkeeping wrong")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []Series{{Name: "cpu", Samples: []power.Sample{{T: sim.Time(sim.Second), W: 1.5}}}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "series,time_s,watts\n") || !strings.Contains(out, "cpu,1.000000000,1.500000") {
		t.Fatalf("csv:\n%s", out)
	}
}

// buildCSV renders a fixed two-series trace through the exporter; the
// golden test pins its exact bytes.
func buildCSV(t *testing.T) string {
	t.Helper()
	e := sim.NewEngine()
	r := power.NewRail(e, "cpu", 1)
	e.At(sim.Time(25*sim.Millisecond), func(sim.Time) { r.Set(2.5) })
	e.At(sim.Time(60*sim.Millisecond), func(sim.Time) { r.Set(0.75) })
	e.Run(sim.Time(100 * sim.Millisecond))
	raw := []power.Sample{
		{T: sim.Time(5 * sim.Millisecond), W: 1.25},
		{T: sim.Time(15 * sim.Millisecond), W: 1.75},
		{T: sim.Time(35 * sim.Millisecond), W: 2.5},
		{T: sim.Time(75 * sim.Millisecond), W: 0.5},
	}
	series := []Series{
		{Name: "cpu_rail", Samples: DownsampleRail(r, 0, sim.Time(100*sim.Millisecond), 20*sim.Millisecond)},
		{Name: "victim_psbox", Samples: DownsampleSamples(raw, 0, sim.Time(100*sim.Millisecond), 10*sim.Millisecond, 20*sim.Millisecond)},
	}
	var b strings.Builder
	if err := WriteCSV(&b, series); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestWriteCSVGolden byte-compares the CSV exporter against its committed
// golden. Regenerate with UPDATE_GOLDEN=1 go test ./internal/trace/.
func TestWriteCSVGolden(t *testing.T) {
	got := buildCSV(t)
	path := filepath.Join("testdata", "write-csv.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if got != string(want) {
		t.Fatalf("CSV output diverged from golden (regenerate with UPDATE_GOLDEN=1 if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPlotGlyphReuseBeyondFive(t *testing.T) {
	var many []Series
	for i := 0; i < 7; i++ {
		many = append(many, Series{
			Name:    "s",
			Samples: []power.Sample{{T: sim.Time(i * 10), W: float64(i + 1)}},
		})
	}
	out := Plot(many, 0, 100, 40, 6)
	if !strings.Contains(out, "*") {
		t.Fatal("glyphs should wrap around")
	}
}

func TestGanttManyLabelsWrapGlyphs(t *testing.T) {
	g := NewGantt()
	for i := 0; i < 30; i++ {
		g.Add("lane", string(rune('a'+i%26))+"x"+string(rune('0'+i/26)), sim.Time(i*10), sim.Time(i*10+5))
	}
	out := g.Render(0, 300, 60)
	if !strings.Contains(out, "lane") {
		t.Fatal("render failed with many labels")
	}
}

func TestGanttClipping(t *testing.T) {
	g := NewGantt()
	g.Add("l", "x", -50, 5)   // starts before the view
	g.Add("l", "y", 95, 200)  // ends after the view
	g.Add("l", "z", 300, 400) // fully outside
	out := g.Render(0, 100, 50)
	if !strings.Contains(out, "= x") || !strings.Contains(out, "= y") {
		t.Fatalf("clipped spans missing:\n%s", out)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func TestWriteCSVPropagatesErrors(t *testing.T) {
	err := WriteCSV(&failWriter{}, []Series{{Name: "a", Samples: []power.Sample{{T: 1, W: 1}}}})
	if err == nil {
		t.Fatal("write error swallowed")
	}
}
