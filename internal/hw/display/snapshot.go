package display

import (
	"sort"

	"psbox/internal/snapshot"
)

// Snapshot encodes the panel: power, regions (sorted by owner), the rail
// history, and every per-app attribution rail.
func (d *Display) Snapshot(enc *snapshot.Encoder) {
	enc.Bool(d.on)
	owners := make([]int, 0, len(d.regions))
	for o := range d.regions {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	enc.Len(len(owners))
	for _, o := range owners {
		r := d.regions[o]
		enc.I64(int64(o))
		enc.I64(int64(r.Owner))
		enc.I64(int64(r.Pixels))
		enc.F64(r.Luminance)
	}
	d.rail.Snapshot(enc)
	ownerIDs := make([]int, 0, len(d.ownerRails))
	for o := range d.ownerRails {
		ownerIDs = append(ownerIDs, o)
	}
	sort.Ints(ownerIDs)
	enc.Len(len(ownerIDs))
	for _, o := range ownerIDs {
		enc.I64(int64(o))
		d.ownerRails[o].Snapshot(enc)
	}
}

// Restore verifies the live panel against a checkpoint section.
func (d *Display) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, d.Snapshot) }
