// Package display models an OLED panel, the paper's §7(1) extension case.
//
// OLED power is additive per pixel with essentially no lingering state, so
// it is free of power entanglement: the OS can attribute display power to
// apps exactly, by the pixels each app produces, without any ballooning.
// The model exists to demonstrate that psbox's machinery is *not* needed
// where entanglement is structurally absent.
package display

import (
	"fmt"
	"sort"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// Config describes the panel.
type Config struct {
	Name string

	// BaseW is the driver/controller power while the panel is on.
	BaseW power.Watts

	// PixelW is the power of one pixel at full luminance. Total pixel power
	// is PixelW · Σ pixels·luminance over regions.
	PixelW power.Watts

	// Width and Height bound the addressable area.
	Width, Height int
}

// DefaultConfig models a small embedded OLED panel.
func DefaultConfig() Config {
	return Config{
		Name:   "display",
		BaseW:  0.12,
		PixelW: 2.2e-6,
		Width:  1280,
		Height: 800,
	}
}

func (c Config) validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("display %q: non-positive dimensions", c.Name)
	}
	if c.PixelW < 0 || c.BaseW < 0 {
		return fmt.Errorf("display %q: negative power", c.Name)
	}
	return nil
}

// Region is one app's lit screen area.
type Region struct {
	Owner     int
	Pixels    int
	Luminance float64 // mean luminance in [0, 1]
}

// Display is a simulated OLED panel.
type Display struct {
	eng *sim.Engine
	//psbox:allow-snapshotstate construction-time config; identical by scenario reconstruction under the replay-twin contract
	cfg     Config
	rail    *power.Rail
	regions map[int]Region
	on      bool

	// ownerRails carry each app's exact power contribution over time —
	// the per-app attribution the paper says OLED admits directly, and
	// what a psbox bound to the display observes.
	ownerRails map[int]*power.Rail
}

// New builds a powered-on panel showing nothing.
func New(eng *sim.Engine, cfg Config) (*Display, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Display{
		eng:        eng,
		cfg:        cfg,
		regions:    make(map[int]Region),
		on:         true,
		ownerRails: make(map[int]*power.Rail),
	}
	d.rail = power.NewRail(eng, cfg.Name, cfg.BaseW)
	return d, nil
}

// MustNew is New for statically valid configurations.
func MustNew(eng *sim.Engine, cfg Config) *Display {
	d, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Rail exposes the panel's metering scope.
func (d *Display) Rail() *power.Rail { return d.rail }

// SetRegion records what an app is currently drawing. A zero-pixel region
// removes the app's contribution.
func (d *Display) SetRegion(r Region) {
	if r.Pixels < 0 || r.Pixels > d.cfg.Width*d.cfg.Height {
		panic(fmt.Sprintf("display %s: region of %d pixels out of range", d.cfg.Name, r.Pixels))
	}
	if r.Luminance < 0 || r.Luminance > 1 {
		panic(fmt.Sprintf("display %s: luminance %v out of range", d.cfg.Name, r.Luminance))
	}
	if r.Pixels == 0 {
		delete(d.regions, r.Owner)
	} else {
		d.regions[r.Owner] = r
	}
	d.updatePower()
}

// SetPower turns the panel on or off (an off/suspended state).
func (d *Display) SetPower(on bool) {
	d.on = on
	d.updatePower()
}

// On reports whether the panel is powered.
func (d *Display) On() bool { return d.on }

// AppPower reports one app's exact power contribution right now. This is
// the paper's point: for OLED the OS can divide power among apps directly.
func (d *Display) AppPower(owner int) power.Watts {
	if !d.on {
		return 0
	}
	r, ok := d.regions[owner]
	if !ok {
		return 0
	}
	return d.cfg.PixelW * float64(r.Pixels) * r.Luminance
}

// OwnerRail returns (creating on demand) an app's exact attribution rail.
func (d *Display) OwnerRail(owner int) *power.Rail {
	r, ok := d.ownerRails[owner]
	if !ok {
		r = power.NewRail(d.eng, fmt.Sprintf("%s-app%d", d.cfg.Name, owner), d.AppPower(owner))
		d.ownerRails[owner] = r
	}
	return r
}

func (d *Display) updatePower() {
	if !d.on {
		d.rail.Set(0)
		for _, r := range d.ownerRails {
			r.Set(0)
		}
		return
	}
	// Sum in sorted-owner order: float addition is not associative, so
	// map-iteration order would leak into the total's last bits and break
	// byte-determinism across runs.
	owners := make([]int, 0, len(d.regions))
	for owner := range d.regions {
		owners = append(owners, owner)
	}
	sort.Ints(owners)
	p := d.cfg.BaseW
	for _, owner := range owners {
		r := d.regions[owner]
		p += d.cfg.PixelW * float64(r.Pixels) * r.Luminance
	}
	d.rail.Set(p)
	for owner, r := range d.ownerRails {
		r.Set(d.AppPower(owner))
	}
}
