package display

import (
	"math"
	"testing"
	"testing/quick"

	"psbox/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{Name: "a", Width: 0, Height: 1},
		{Name: "b", Width: 1, Height: 1, BaseW: -1},
		{Name: "c", Width: 1, Height: 1, PixelW: -1},
	}
	for _, cfg := range bad {
		if _, err := New(e, cfg); err == nil {
			t.Errorf("config %q should fail", cfg.Name)
		}
	}
	if _, err := New(e, DefaultConfig()); err != nil {
		t.Fatal("default config invalid")
	}
}

func TestAdditivePixelPower(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, DefaultConfig())
	base := d.Rail().Power()
	d.SetRegion(Region{Owner: 1, Pixels: 100000, Luminance: 0.5})
	p1 := d.Rail().Power() - base
	d.SetRegion(Region{Owner: 2, Pixels: 200000, Luminance: 0.25})
	p2 := d.Rail().Power() - base - p1
	if math.Abs(p1-p2) > 1e-12 {
		t.Fatalf("equal pixel·luminance products should draw equal power: %v vs %v", p1, p2)
	}
	// Per-app attribution is exact: no entanglement.
	if math.Abs(d.AppPower(1)-p1) > 1e-12 || math.Abs(d.AppPower(2)-p2) > 1e-12 {
		t.Fatal("AppPower should match marginal contribution exactly")
	}
}

func TestRemoveRegion(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, DefaultConfig())
	d.SetRegion(Region{Owner: 1, Pixels: 1000, Luminance: 1})
	d.SetRegion(Region{Owner: 1, Pixels: 0})
	if d.AppPower(1) != 0 {
		t.Fatal("zero-pixel region should remove contribution")
	}
	if d.Rail().Power() != DefaultConfig().BaseW {
		t.Fatal("power should return to base")
	}
}

func TestPanelOff(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, DefaultConfig())
	d.SetRegion(Region{Owner: 1, Pixels: 1000, Luminance: 1})
	d.SetPower(false)
	if d.Rail().Power() != 0 || d.AppPower(1) != 0 || d.On() {
		t.Fatal("off panel should draw nothing")
	}
	d.SetPower(true)
	if d.AppPower(1) == 0 {
		t.Fatal("regions should survive power cycling")
	}
}

func TestRegionValidation(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, DefaultConfig())
	for _, r := range []Region{
		{Owner: 1, Pixels: -1},
		{Owner: 1, Pixels: 1 << 30},
		{Owner: 1, Pixels: 10, Luminance: 1.5},
		{Owner: 1, Pixels: 10, Luminance: -0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("region %+v should panic", r)
				}
			}()
			d.SetRegion(r)
		}()
	}
}

// Property: total panel power always equals base plus the sum of exact
// per-app attributions — the structural absence of entanglement.
func TestQuickNoEntanglement(t *testing.T) {
	cfg := DefaultConfig()
	f := func(pix []uint16, lum []uint8) bool {
		e := sim.NewEngine()
		d := MustNew(e, cfg)
		n := len(pix)
		if len(lum) < n {
			n = len(lum)
		}
		for i := 0; i < n; i++ {
			d.SetRegion(Region{
				Owner:     i,
				Pixels:    int(pix[i]),
				Luminance: float64(lum[i]) / 255,
			})
		}
		sum := cfg.BaseW
		for i := 0; i < n; i++ {
			sum += d.AppPower(i)
		}
		return math.Abs(sum-d.Rail().Power()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
