package cellular

import (
	"math"
	"testing"

	"psbox/internal/sim"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.LinkBytesPerSec = 1e6
	cfg.PerPacketOverhead = 1 * sim.Millisecond
	cfg.PromotionDelay = 500 * sim.Millisecond
	cfg.DchTail = 4 * sim.Second
	cfg.FachTail = 8 * sim.Second
	return cfg
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{Name: "a", LinkBytesPerSec: 0, DchTail: 1, FachTail: 1},
		{Name: "b", LinkBytesPerSec: 1, DchTail: 0, FachTail: 1},
		{Name: "c", LinkBytesPerSec: 1, DchTail: 1, FachTail: 1, PromotionDelay: -1},
	}
	for _, cfg := range bad {
		if _, err := New(e, cfg); err == nil {
			t.Errorf("config %q should fail", cfg.Name)
		}
	}
	if _, err := New(e, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestRRCLifecycle(t *testing.T) {
	e := sim.NewEngine()
	cfg := testCfg()
	m := MustNew(e, cfg)
	if m.State() != RRCIdle || m.Rail().Power() != cfg.IdleW {
		t.Fatal("should start idle")
	}
	var done *Packet
	m.OnComplete(func(p *Packet) { done = p })
	m.Send(1, 1000) // 2ms airtime after 500ms promotion
	// During promotion the radio burns DCH power without carrying data.
	if m.Rail().Power() != cfg.DchW {
		t.Fatalf("promotion power = %v", m.Rail().Power())
	}
	e.RunFor(400 * sim.Millisecond)
	if done != nil {
		t.Fatal("data moved during promotion")
	}
	e.RunFor(200 * sim.Millisecond)
	if done == nil || m.State() != RRCDch {
		t.Fatal("transfer should complete in DCH")
	}
	if got := done.Completed.Sub(done.Enqueued); got < 500*sim.Millisecond {
		t.Fatalf("promotion delay missing: %v", got)
	}
	// Demotion ladder: DCH → FACH after DchTail, → IDLE after FachTail.
	e.RunFor(cfg.DchTail + 10*sim.Millisecond)
	if m.State() != RRCFach || m.Rail().Power() != cfg.FachW {
		t.Fatalf("state = %v after DCH tail", m.State())
	}
	e.RunFor(cfg.FachTail + 10*sim.Millisecond)
	if m.State() != RRCIdle {
		t.Fatalf("state = %v after FACH tail", m.State())
	}
}

func TestActivityResetsDemotion(t *testing.T) {
	e := sim.NewEngine()
	cfg := testCfg()
	m := MustNew(e, cfg)
	m.Send(1, 1000)
	e.RunFor(600 * sim.Millisecond) // in DCH
	// Keep sending every 2s: the DCH tail (4s) never expires.
	for i := 0; i < 4; i++ {
		e.RunFor(2 * sim.Second)
		if m.State() != RRCDch {
			t.Fatalf("demoted despite activity at round %d", i)
		}
		m.Send(1, 500)
	}
}

func TestSecondSenderRidesExistingDCH(t *testing.T) {
	// The §7(3) entanglement: whether a transfer pays the promotion and
	// tail depends on what OTHER apps did — and the OS cannot save or
	// restore the state to insulate it.
	measure := func(warm bool) float64 {
		e := sim.NewEngine()
		cfg := testCfg()
		m := MustNew(e, cfg)
		if warm {
			m.Send(2, 1000) // another app promotes the radio
			e.RunFor(1 * sim.Second)
		} else {
			e.RunFor(1 * sim.Second)
		}
		start := e.Now()
		var doneAt sim.Time
		m.OnComplete(func(p *Packet) {
			if p.Owner == 1 {
				doneAt = p.Completed
			}
		})
		m.Send(1, 2000)
		e.RunFor(2 * sim.Second)
		return doneAt.Sub(start).Seconds()
	}
	cold, warm := measure(false), measure(true)
	if warm >= cold {
		t.Fatalf("warm radio should be faster: %v vs %v", warm, cold)
	}
	if cold-warm < 0.4 {
		t.Fatalf("promotion delay should dominate: cold %v warm %v", cold, warm)
	}
}

// The limitation demonstrated end to end: identical victim traffic yields
// wildly different rail energy depending on a co-runner, and without
// State/Restore no balloon can fix it.
func TestUncontrollableStateEntanglesEnergy(t *testing.T) {
	victimEnergy := func(coRunner bool) float64 {
		e := sim.NewEngine()
		cfg := testCfg()
		m := MustNew(e, cfg)
		if coRunner {
			// A chatty co-runner keeps the radio in DCH throughout.
			var chat func(sim.Time)
			chat = func(sim.Time) {
				m.Send(2, 200)
				e.After(2*sim.Second, chat)
			}
			chat(0)
		}
		// Victim: one small upload every 20 s — each pays promotion + full
		// tails when alone, almost nothing when the co-runner keeps the
		// radio hot. Attribute energy naively by even split of busy power.
		var victimSpans []struct{ a, b sim.Time }
		m.OnComplete(func(p *Packet) {
			if p.Owner == 1 {
				victimSpans = append(victimSpans, struct{ a, b sim.Time }{p.Enqueued, p.Completed})
			}
		})
		m.Send(1, 1000)
		e.RunFor(20 * sim.Second)
		m.Send(1, 1000)
		e.RunFor(20 * sim.Second)
		// "Energy caused by the victim": total rail energy minus what the
		// rail would have drawn had the victim stayed silent cannot even
		// be defined per-app here; use the marginal heuristic over the
		// victim's request windows plus its triggered tails — approximated
		// by integrating 2 s after each completion.
		var eJ float64
		for _, s := range victimSpans {
			end := s.b.Add(6 * sim.Second) // cover the triggered DCH tail
			if end > e.Now() {
				end = e.Now()
			}
			eJ += m.Rail().EnergyBetween(s.a, end)
		}
		return eJ
	}
	alone := victimEnergy(false)
	entangled := victimEnergy(true)
	diff := math.Abs(entangled-alone) / alone
	if diff < 0.15 {
		t.Fatalf("cellular state should entangle the victim's energy: alone %v vs co-run %v", alone, entangled)
	}
}

func TestSendValidation(t *testing.T) {
	e := sim.NewEngine()
	m := MustNew(e, testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Send(1, 0)
}

func TestRRCStateString(t *testing.T) {
	if RRCIdle.String() != "idle" || RRCFach.String() != "fach" ||
		RRCDch.String() != "dch" || RRCState(9).String() != "rrc(9)" {
		t.Fatal("strings wrong")
	}
}

func TestQueueFIFO(t *testing.T) {
	e := sim.NewEngine()
	m := MustNew(e, testCfg())
	var order []uint64
	m.OnComplete(func(p *Packet) { order = append(order, p.ID) })
	m.Send(1, 1000)
	m.Send(2, 1000)
	m.Send(1, 1000)
	if m.QueueLen() != 3 {
		t.Fatalf("queue = %d", m.QueueLen())
	}
	e.RunFor(2 * sim.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}
