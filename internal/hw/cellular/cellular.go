// Package cellular models a 4G/LTE interface, the paper's §7(3) limitation
// case. Unlike the WiFi NIC, a cellular modem's power states (the RRC
// state machine: IDLE, FACH, DCH) are governed by the cellular standard
// and configured by the network — the OS can neither reprogram the
// inactivity timers nor save/restore the state. The type therefore exposes
// NO State/Restore pair: power-state virtualization, and with it a full
// psbox, "will be made feasible on cellular interfaces through future
// hardware support".
package cellular

import (
	"fmt"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// RRCState is the radio resource control state.
type RRCState int

const (
	// RRCIdle: camped, lowest power.
	RRCIdle RRCState = iota
	// RRCFach: shared-channel state, medium power (demotion target).
	RRCFach
	// RRCDch: dedicated channel, full power; required for transmission.
	RRCDch
)

func (s RRCState) String() string {
	switch s {
	case RRCIdle:
		return "idle"
	case RRCFach:
		return "fach"
	case RRCDch:
		return "dch"
	default:
		return fmt.Sprintf("rrc(%d)", int(s))
	}
}

// Config describes the modem. The timers belong to the *network* — they
// are not OS-tunable on real hardware; they are fields here only so tests
// can model different operators.
type Config struct {
	Name string

	LinkBytesPerSec   float64
	PerPacketOverhead sim.Duration

	IdleW power.Watts
	FachW power.Watts
	DchW  power.Watts

	// PromotionDelay is the IDLE/FACH→DCH signalling delay, during which
	// the radio already draws DCH power but cannot carry data.
	PromotionDelay sim.Duration

	// DchTail and FachTail are the network-configured inactivity timers:
	// DCH→FACH after DchTail without traffic, FACH→IDLE after FachTail
	// more.
	DchTail  sim.Duration
	FachTail sim.Duration
}

// DefaultConfig models a typical LTE/3G-era operator configuration (cf.
// the paper's ref [41]).
func DefaultConfig() Config {
	return Config{
		Name:              "cellular",
		LinkBytesPerSec:   1.5e6,
		PerPacketOverhead: 1 * sim.Millisecond,
		IdleW:             0.02,
		FachW:             0.45,
		DchW:              1.00,
		PromotionDelay:    600 * sim.Millisecond,
		DchTail:           5 * sim.Second,
		FachTail:          12 * sim.Second,
	}
}

func (c Config) validate() error {
	if c.LinkBytesPerSec <= 0 {
		return fmt.Errorf("cellular %q: LinkBytesPerSec must be positive", c.Name)
	}
	if c.PromotionDelay < 0 || c.DchTail <= 0 || c.FachTail <= 0 {
		return fmt.Errorf("cellular %q: invalid timers", c.Name)
	}
	return nil
}

// Packet is one upload unit.
type Packet struct {
	ID    uint64
	Owner int
	Bytes int

	Enqueued   sim.Time
	Dispatched sim.Time
	Completed  sim.Time
}

// Modem is the simulated interface. Transmission requests queue inside the
// modem (the baseband owns its own buffering); the RRC machine promotes
// and demotes on its own timers.
type Modem struct {
	eng  *sim.Engine
	cfg  Config
	rail *power.Rail

	state    RRCState
	queue    []*Packet
	inflight *Packet
	promo    sim.Handle
	demote   sim.Handle

	onComplete []func(*Packet)
	nextID     uint64
}

// New builds an idle modem.
func New(eng *sim.Engine, cfg Config) (*Modem, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Modem{eng: eng, cfg: cfg, state: RRCIdle}
	m.rail = power.NewRail(eng, cfg.Name, cfg.IdleW)
	return m, nil
}

// MustNew is New for statically valid configurations.
func MustNew(eng *sim.Engine, cfg Config) *Modem {
	m, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Rail exposes the modem's metering scope.
func (m *Modem) Rail() *power.Rail { return m.rail }

// State reports the current RRC state.
func (m *Modem) State() RRCState { return m.state }

// Config returns the modem's configuration.
func (m *Modem) Config() Config { return m.cfg }

// OnComplete registers the transmission-done handler.
func (m *Modem) OnComplete(fn func(*Packet)) { m.onComplete = append(m.onComplete, fn) }

// Send enqueues an upload. The modem handles promotion automatically.
func (m *Modem) Send(owner, bytes int) *Packet {
	if bytes <= 0 {
		panic(fmt.Sprintf("cellular %s: empty packet", m.cfg.Name))
	}
	m.nextID++
	p := &Packet{ID: m.nextID, Owner: owner, Bytes: bytes, Enqueued: m.eng.Now()}
	m.queue = append(m.queue, p)
	m.pump()
	return p
}

// QueueLen reports packets waiting in the baseband.
func (m *Modem) QueueLen() int { return len(m.queue) }

func (m *Modem) setState(s RRCState) {
	m.state = s
	switch s {
	case RRCIdle:
		m.rail.Set(m.cfg.IdleW)
	case RRCFach:
		m.rail.Set(m.cfg.FachW)
	case RRCDch:
		m.rail.Set(m.cfg.DchW)
	}
}

func (m *Modem) cancelTimer(h *sim.Handle) {
	if *h != (sim.Handle{}) {
		m.eng.Cancel(*h)
		*h = sim.Handle{}
	}
}

func (m *Modem) pump() {
	if m.inflight != nil || len(m.queue) == 0 {
		return
	}
	m.cancelTimer(&m.demote)
	if m.state != RRCDch {
		if m.promo != (sim.Handle{}) {
			return // promotion already in progress
		}
		// Promotion: the radio burns DCH power during signalling but
		// cannot carry data yet. The OS has no say in this.
		m.rail.Set(m.cfg.DchW)
		m.promo = m.eng.After(m.cfg.PromotionDelay, func(sim.Time) {
			m.promo = sim.Handle{}
			m.setState(RRCDch)
			m.pump()
		})
		return
	}
	p := m.queue[0]
	m.queue = m.queue[1:]
	m.inflight = p
	p.Dispatched = m.eng.Now()
	air := m.cfg.PerPacketOverhead +
		sim.Duration(float64(p.Bytes)/m.cfg.LinkBytesPerSec*1e9)
	m.eng.After(air, func(sim.Time) { m.finish(p) })
}

func (m *Modem) finish(p *Packet) {
	p.Completed = m.eng.Now()
	m.inflight = nil
	if len(m.queue) > 0 {
		m.pump()
	} else {
		m.armDemotion()
	}
	for _, fn := range m.onComplete {
		fn(p)
	}
}

func (m *Modem) armDemotion() {
	m.cancelTimer(&m.demote)
	m.demote = m.eng.After(m.cfg.DchTail, func(sim.Time) {
		m.demote = sim.Handle{}
		if m.state != RRCDch || m.inflight != nil || len(m.queue) > 0 {
			return
		}
		m.setState(RRCFach)
		m.demote = m.eng.After(m.cfg.FachTail, func(sim.Time) {
			m.demote = sim.Handle{}
			if m.state == RRCFach && m.inflight == nil && len(m.queue) == 0 {
				m.setState(RRCIdle)
			}
		})
	})
}
