package accelhw

import "psbox/internal/snapshot"

// Snapshot encodes one command's full lifecycle state. Commands are plain
// data, so they are encoded wherever they sit — driver pending queues,
// the device ring, or the execution slots.
func (c *Command) Snapshot(enc *snapshot.Encoder) {
	enc.U64(c.ID)
	enc.I64(int64(c.Owner))
	enc.Str(c.Kind)
	enc.F64(c.Work)
	enc.F64(float64(c.DynW))
	enc.I64(int64(c.Submitted))
	enc.I64(int64(c.Dispatched))
	enc.I64(int64(c.Started))
	enc.I64(int64(c.Completed))
	enc.I64(int64(c.Retries))
	enc.F64(c.remaining)
	enc.Bool(c.hung)
}

// Snapshot encodes the device: pipeline and ring contents (with each
// executing command's armed completion timer), DVFS state, governor window
// accounting, the hang latch, and the power rail history.
func (d *Device) Snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(d.freqIdx))
	enc.I64(int64(d.execWidth))
	enc.Len(len(d.running))
	for _, c := range d.running {
		c.Snapshot(enc)
		enc.U64(d.completion[c].Seq())
	}
	enc.Len(len(d.ring))
	for _, c := range d.ring {
		c.Snapshot(enc)
	}
	enc.I64(int64(d.lastAdv))
	enc.I64(int64(d.windowStart))
	enc.I64(int64(d.busyAccum))
	enc.Bool(d.hangNext)
	enc.U64(d.resets)
	d.rail.Snapshot(enc)
}

// RestoreSnapshot verifies the live device against a checkpoint section.
// (Restore is taken by the §4.1 power-state virtualization API.)
func (d *Device) RestoreSnapshot(dec *snapshot.Decoder) error {
	return snapshot.Verify(dec, d.Snapshot)
}
