// Package accelhw models asynchronous command-executing accelerators (GPU,
// DSP) behind a single power rail.
//
// The model reproduces the "blurry request boundary" entanglement cause of
// the paper's §2.3: the device executes up to Slots commands concurrently,
// the CPU-side driver only learns about completions via (simulated)
// interrupts, and the power of temporally overlapping commands merges on the
// shared rail (Fig. 3b). An optional DVFS governor adds lingering power
// state on top.
package accelhw

import (
	"fmt"
	"math"
	"sort"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// Config describes an accelerator device.
type Config struct {
	Name string

	// Slots is the device's total command capacity: commands the driver
	// has dispatched that have not yet completed. Up to ExecWidth of them
	// execute concurrently; the rest wait in the hardware ring buffer.
	// Draining a temporal balloon must wait for all of them — the depth of
	// the ring is what makes drains long under a saturating competitor
	// (§6.3 "excessive draining time").
	Slots int

	// ExecWidth is the execution pipeline width. Zero means Slots (no
	// ring beyond the executing commands).
	ExecWidth int

	// FreqsMHz lists operating points, ascending. A slot executing at the
	// top operating point retires WorkPerSecAtTop work units per second;
	// the rate scales linearly with frequency.
	FreqsMHz        []float64
	WorkPerSecAtTop float64

	// ShareFactor is the per-slot rate multiplier when more than one slot
	// is busy, modelling shared-resource contention inside the device.
	ShareFactor float64

	// IdleW is drawn by the powered-on idle device. A command's dynamic
	// power is Command.DynW at the top operating point, scaled linearly
	// with frequency.
	IdleW power.Watts

	// Governor parameters; zero GovernorWindow pins InitialFreqIdx.
	GovernorWindow sim.Duration
	UpThreshold    float64
	DownThreshold  float64
	InitialFreqIdx int
}

// GPUConfig models the PowerVR SGX544MP of the paper's AM57x platform.
func GPUConfig() Config {
	return Config{
		Name:            "gpu",
		Slots:           8,
		ExecWidth:       2,
		FreqsMHz:        []float64{200, 320, 450},
		WorkPerSecAtTop: 1e6, // work units/s per slot at 450 MHz
		ShareFactor:     0.85,
		IdleW:           0.25,
		GovernorWindow:  30 * sim.Millisecond,
		// Mobile GPU governors are latency-greedy: they ramp on moderate
		// load (a single serial client keeps one of two pipes busy).
		UpThreshold:    0.45,
		DownThreshold:  0.15,
		InitialFreqIdx: 0,
	}
}

// AdrenoConfig models the Qualcomm Adreno 420 of the paper's second GPU
// platform (Nexus 6): wider execution, deeper ring, more operating points,
// higher dynamic range than the SGX544.
func AdrenoConfig() Config {
	return Config{
		Name:            "gpu",
		Slots:           16,
		ExecWidth:       4,
		FreqsMHz:        []float64{200, 300, 420, 600},
		WorkPerSecAtTop: 2.4e6,
		ShareFactor:     0.9,
		IdleW:           0.35,
		GovernorWindow:  20 * sim.Millisecond,
		UpThreshold:     0.45,
		DownThreshold:   0.15,
		InitialFreqIdx:  0,
	}
}

// DSPConfig models the TI C66x DSP (fixed clock).
func DSPConfig() Config {
	return Config{
		Name:            "dsp",
		Slots:           4,
		ExecWidth:       2,
		FreqsMHz:        []float64{600},
		WorkPerSecAtTop: 1e6,
		ShareFactor:     0.90,
		IdleW:           0.35,
		InitialFreqIdx:  0,
	}
}

func (c Config) validate() error {
	if c.Slots <= 0 {
		return fmt.Errorf("accelhw %q: need at least one slot", c.Name)
	}
	if c.ExecWidth < 0 || c.ExecWidth > c.Slots {
		return fmt.Errorf("accelhw %q: ExecWidth must be in [0, Slots]", c.Name)
	}
	if len(c.FreqsMHz) == 0 {
		return fmt.Errorf("accelhw %q: need at least one operating point", c.Name)
	}
	for i := 1; i < len(c.FreqsMHz); i++ {
		if c.FreqsMHz[i] <= c.FreqsMHz[i-1] {
			return fmt.Errorf("accelhw %q: FreqsMHz must ascend", c.Name)
		}
	}
	if c.WorkPerSecAtTop <= 0 {
		return fmt.Errorf("accelhw %q: WorkPerSecAtTop must be positive", c.Name)
	}
	if c.ShareFactor <= 0 || c.ShareFactor > 1 {
		return fmt.Errorf("accelhw %q: ShareFactor must be in (0,1]", c.Name)
	}
	if c.InitialFreqIdx < 0 || c.InitialFreqIdx >= len(c.FreqsMHz) {
		return fmt.Errorf("accelhw %q: InitialFreqIdx out of range", c.Name)
	}
	return nil
}

// Command is one unit of offloaded work. The kernel driver fills Owner and
// the timestamps; the device consumes Work and DynW.
type Command struct {
	ID    uint64
	Owner int     // app identifier, assigned by the kernel
	Kind  string  // workload-defined type label (same type ⇒ same signature)
	Work  float64 // work units to retire
	DynW  power.Watts

	Submitted  sim.Time // app → driver
	Dispatched sim.Time // driver → device
	Started    sim.Time // execution begins (leaves the ring)
	Completed  sim.Time // device interrupt

	// Retries counts how many times a kernel watchdog has resubmitted the
	// command after a device reset.
	Retries int

	remaining float64
	hung      bool
}

// Device is a simulated accelerator.
type Device struct {
	eng *sim.Engine
	//psbox:allow-snapshotstate construction-time config; identical by scenario reconstruction under the replay-twin contract
	cfg  Config
	rail *power.Rail

	freqIdx    int
	execWidth  int
	running    []*Command // executing
	ring       []*Command // dispatched, waiting for an execution slot
	completion map[*Command]sim.Handle
	lastAdv    sim.Time

	windowStart sim.Time
	busyAccum   sim.Duration // busy slot-time

	hangNext bool
	resets   uint64

	onComplete   []func(*Command)
	onFreqChange []func(oldIdx, newIdx int)
}

// New builds a device and starts its governor if configured.
func New(eng *sim.Engine, cfg Config) (*Device, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Device{
		eng:        eng,
		cfg:        cfg,
		freqIdx:    cfg.InitialFreqIdx,
		execWidth:  cfg.ExecWidth,
		completion: make(map[*Command]sim.Handle),
		lastAdv:    eng.Now(),
	}
	if d.execWidth == 0 {
		d.execWidth = cfg.Slots
	}
	d.rail = power.NewRail(eng, cfg.Name, cfg.IdleW)
	d.windowStart = eng.Now()
	if cfg.GovernorWindow > 0 {
		eng.After(cfg.GovernorWindow, d.governorTick)
	}
	return d, nil
}

// MustNew is New for statically valid configurations.
func MustNew(eng *sim.Engine, cfg Config) *Device {
	d, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Rail exposes the device's metering scope.
func (d *Device) Rail() *power.Rail { return d.rail }

// Config returns the configuration the device was built with.
func (d *Device) Config() Config { return d.cfg }

// IdlePower reports the power drawn by the idle device.
func (d *Device) IdlePower() power.Watts { return d.cfg.IdleW }

// Busy reports how many slots are executing.
func (d *Device) Busy() int { return len(d.running) + len(d.ring) }

// Executing reports how many commands are actually executing (≤ the
// execution width).
func (d *Device) Executing() int { return len(d.running) }

// ExecWidth reports the execution pipeline width.
func (d *Device) ExecWidth() int { return d.execWidth }

// FreeSlots reports how many commands may still be dispatched (ring plus
// execution capacity).
func (d *Device) FreeSlots() int { return d.cfg.Slots - d.Busy() }

// InFlight returns the commands inside the device — executing plus ringed
// (freshly allocated slice; safe to retain).
func (d *Device) InFlight() []*Command {
	out := make([]*Command, 0, len(d.running)+len(d.ring))
	out = append(out, d.running...)
	return append(out, d.ring...)
}

// FreqIdx reports the current operating point.
func (d *Device) FreqIdx() int { return d.freqIdx }

// OnComplete registers a completion interrupt handler.
func (d *Device) OnComplete(fn func(*Command)) { d.onComplete = append(d.onComplete, fn) }

// OnFreqChange registers an operating-point change callback.
func (d *Device) OnFreqChange(fn func(oldIdx, newIdx int)) {
	d.onFreqChange = append(d.onFreqChange, fn)
}

// FreqState is the device's virtualizable operating power state.
type FreqState struct {
	FreqIdx int
}

// State captures the virtualizable power state (§4.1).
func (d *Device) State() FreqState { return FreqState{FreqIdx: d.freqIdx} }

// Restore reinstates a captured power state.
func (d *Device) Restore(s FreqState) {
	if s.FreqIdx < 0 || s.FreqIdx >= len(d.cfg.FreqsMHz) {
		panic(fmt.Sprintf("accelhw %s: restore freq %d out of range", d.cfg.Name, s.FreqIdx))
	}
	d.setFreq(s.FreqIdx)
	d.windowStart = d.eng.Now()
	d.busyAccum = 0
}

// Dispatch starts executing c. The caller (the kernel driver) must respect
// FreeSlots; dispatching to a full device panics, as real hardware would
// overflow its ring buffer.
func (d *Device) Dispatch(c *Command) {
	if d.Busy() >= d.cfg.Slots {
		panic(fmt.Sprintf("accelhw %s: dispatch to full device", d.cfg.Name))
	}
	if c.Work <= 0 {
		panic(fmt.Sprintf("accelhw %s: command %d with non-positive work", d.cfg.Name, c.ID))
	}
	d.advance()
	c.Dispatched = d.eng.Now()
	c.remaining = c.Work
	c.hung = false
	if d.hangNext {
		d.hangNext = false
		c.hung = true
	}
	if len(d.running) < d.execWidth {
		c.Started = d.eng.Now()
		d.running = append(d.running, c)
		d.reschedule()
	} else {
		d.ring = append(d.ring, c)
	}
	d.updatePower()
}

// InjectHang wedges the device: the oldest executing command stops retiring
// work while keeping its slot and its dynamic power (a stuck shader still
// burns), and it will never raise a completion interrupt. With no command
// executing, the next dispatched one hangs instead. Only a Reset clears the
// condition. It reports whether a command was wedged immediately.
func (d *Device) InjectHang() bool {
	d.advance()
	if len(d.running) == 0 {
		d.hangNext = true
		return false
	}
	c := d.running[0]
	c.hung = true
	if h, ok := d.completion[c]; ok {
		d.eng.Cancel(h)
		delete(d.completion, c)
	}
	d.reschedule()
	return true
}

// Hung reports how many in-device commands are wedged.
func (d *Device) Hung() int {
	n := 0
	for _, c := range d.running {
		if c.hung {
			n++
		}
	}
	return n
}

// Resets reports how many times the device has been reset.
func (d *Device) Resets() uint64 { return d.resets }

// Reset reinitializes the device, as a kernel watchdog would after
// detecting a stuck command: every in-flight command (executing or ringed)
// is aborted and returned in dispatch order for the driver to resubmit, the
// hang condition is cleared, and the device cold-starts at its initial
// operating point.
func (d *Device) Reset() []*Command {
	d.advance()
	aborted := make([]*Command, 0, len(d.running)+len(d.ring))
	aborted = append(aborted, d.running...)
	aborted = append(aborted, d.ring...)
	sort.Slice(aborted, func(i, j int) bool { return aborted[i].ID < aborted[j].ID })
	for _, c := range aborted {
		if h, ok := d.completion[c]; ok {
			d.eng.Cancel(h)
			delete(d.completion, c)
		}
		c.hung = false
		c.remaining = 0
	}
	d.running = d.running[:0]
	d.ring = d.ring[:0]
	d.hangNext = false
	d.resets++
	d.setFreq(d.cfg.InitialFreqIdx)
	d.windowStart = d.eng.Now()
	d.busyAccum = 0
	d.updatePower()
	return aborted
}

// slotRate is the work-unit retire rate per busy slot right now.
func (d *Device) slotRate(nBusy int) float64 {
	if nBusy <= 0 {
		return 0
	}
	rate := d.cfg.WorkPerSecAtTop * d.cfg.FreqsMHz[d.freqIdx] / d.cfg.FreqsMHz[len(d.cfg.FreqsMHz)-1]
	if nBusy > 1 {
		rate *= d.cfg.ShareFactor
	}
	return rate
}

// advance charges progress to every running command up to now.
func (d *Device) advance() {
	now := d.eng.Now()
	dt := now.Sub(d.lastAdv).Seconds()
	if dt > 0 {
		rate := d.slotRate(len(d.running))
		for _, c := range d.running {
			if c.hung {
				continue // a wedged command retires nothing
			}
			c.remaining -= rate * dt
		}
		d.busyAccum += sim.Duration(float64(now.Sub(d.lastAdv)) * float64(len(d.running)))
	}
	d.lastAdv = now
}

// reschedule recomputes each running command's completion event.
func (d *Device) reschedule() {
	rate := d.slotRate(len(d.running))
	for _, c := range d.running {
		if h, ok := d.completion[c]; ok {
			d.eng.Cancel(h)
		}
		if c.hung {
			delete(d.completion, c)
			continue // never completes until a reset
		}
		rem := c.remaining
		if rem < 0 {
			rem = 0
		}
		durNs := int64(math.Ceil(rem / rate * 1e9))
		cc := c
		d.completion[c] = d.eng.After(sim.Duration(durNs), func(sim.Time) { d.complete(cc) })
	}
}

func (d *Device) complete(c *Command) {
	d.advance()
	if c.remaining > 1e-6 {
		// A frequency drop stretched the command; reschedule happened, but a
		// stale event may still fire if cancellation raced. Treat as stale.
		d.reschedule()
		return
	}
	delete(d.completion, c)
	for i, rc := range d.running {
		if rc == c {
			d.running = append(d.running[:i], d.running[i+1:]...)
			break
		}
	}
	c.Completed = d.eng.Now()
	// Pull the next ring entry into the freed execution slot.
	if len(d.ring) > 0 && len(d.running) < d.execWidth {
		next := d.ring[0]
		d.ring = d.ring[1:]
		next.Started = d.eng.Now()
		d.running = append(d.running, next)
	}
	d.reschedule()
	d.updatePower()
	for _, fn := range d.onComplete {
		fn(c)
	}
}

func (d *Device) updatePower() {
	p := d.cfg.IdleW
	scale := d.cfg.FreqsMHz[d.freqIdx] / d.cfg.FreqsMHz[len(d.cfg.FreqsMHz)-1]
	for _, c := range d.running {
		p += c.DynW * scale
	}
	d.rail.Set(p)
}

func (d *Device) setFreq(idx int) {
	if idx == d.freqIdx {
		return
	}
	d.advance()
	old := d.freqIdx
	d.freqIdx = idx
	d.reschedule()
	d.updatePower()
	for _, fn := range d.onFreqChange {
		fn(old, idx)
	}
}

// Utilization reports busy-slot fraction of the current governor window.
func (d *Device) Utilization() float64 {
	now := d.eng.Now()
	span := now.Sub(d.windowStart)
	if span <= 0 {
		return 0
	}
	busy := d.busyAccum + sim.Duration(float64(now.Sub(d.lastAdv))*float64(len(d.running)))
	return float64(busy) / float64(int64(span)*int64(d.execWidth))
}

func (d *Device) governorTick(now sim.Time) {
	d.advance() // fold the running stretch into the closing window
	util := d.Utilization()
	switch {
	case util > d.cfg.UpThreshold && d.freqIdx < len(d.cfg.FreqsMHz)-1:
		d.setFreq(d.freqIdx + 1)
	case util < d.cfg.DownThreshold && d.freqIdx > 0:
		d.setFreq(d.freqIdx - 1)
	}
	d.windowStart = now
	d.busyAccum = 0
	d.eng.After(d.cfg.GovernorWindow, d.governorTick)
}
