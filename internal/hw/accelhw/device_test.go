package accelhw

import (
	"math"
	"testing"
	"testing/quick"

	"psbox/internal/sim"
)

func testCfg() Config {
	return Config{
		Name:            "dev",
		Slots:           2,
		FreqsMHz:        []float64{1000},
		WorkPerSecAtTop: 1000, // 1 work unit per millisecond
		ShareFactor:     0.5,  // aggressive, easy arithmetic
		IdleW:           0.25,
		InitialFreqIdx:  0,
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{Name: "a", Slots: 0, FreqsMHz: []float64{1}, WorkPerSecAtTop: 1, ShareFactor: 1},
		{Name: "b", Slots: 1, FreqsMHz: nil, WorkPerSecAtTop: 1, ShareFactor: 1},
		{Name: "c", Slots: 1, FreqsMHz: []float64{2, 1}, WorkPerSecAtTop: 1, ShareFactor: 1},
		{Name: "d", Slots: 1, FreqsMHz: []float64{1}, WorkPerSecAtTop: 0, ShareFactor: 1},
		{Name: "e", Slots: 1, FreqsMHz: []float64{1}, WorkPerSecAtTop: 1, ShareFactor: 0},
		{Name: "f", Slots: 1, FreqsMHz: []float64{1}, WorkPerSecAtTop: 1, ShareFactor: 1, InitialFreqIdx: 3},
	}
	for _, cfg := range bad {
		if _, err := New(e, cfg); err == nil {
			t.Errorf("config %q should fail", cfg.Name)
		}
	}
	for _, cfg := range []Config{GPUConfig(), DSPConfig()} {
		if _, err := New(e, cfg); err != nil {
			t.Errorf("%s config invalid: %v", cfg.Name, err)
		}
	}
}

func TestSingleCommandTiming(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, testCfg())
	var done *Command
	d.OnComplete(func(c *Command) { done = c })
	c := &Command{ID: 1, Work: 10, DynW: 0.5} // 10 units @ 1 unit/ms = 10 ms
	d.Dispatch(c)
	if d.Busy() != 1 || d.FreeSlots() != 1 {
		t.Fatal("slot accounting wrong")
	}
	e.RunFor(9 * sim.Millisecond)
	if done != nil {
		t.Fatal("completed early")
	}
	e.RunFor(2 * sim.Millisecond)
	if done == nil {
		t.Fatal("did not complete")
	}
	if got := done.Completed.Sub(done.Dispatched); got != 10*sim.Millisecond {
		t.Fatalf("duration = %v want 10ms", got)
	}
	if d.Busy() != 0 {
		t.Fatal("slot not freed")
	}
}

func TestPowerReflectsInFlight(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, testCfg())
	if d.Rail().Power() != 0.25 {
		t.Fatalf("idle power = %v", d.Rail().Power())
	}
	d.Dispatch(&Command{ID: 1, Work: 100, DynW: 0.5})
	if d.Rail().Power() != 0.75 {
		t.Fatalf("one cmd power = %v", d.Rail().Power())
	}
	d.Dispatch(&Command{ID: 2, Work: 100, DynW: 0.3})
	if math.Abs(d.Rail().Power()-1.05) > 1e-12 {
		t.Fatalf("two cmd power = %v", d.Rail().Power())
	}
}

// Fig. 3(b) essence: overlapping commands slow each other down and their
// rail power merges, so per-command attribution from CPU-visible windows is
// impossible.
func TestContentionStretchesCommands(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, testCfg())
	var completed []*Command
	d.OnComplete(func(c *Command) { completed = append(completed, c) })
	a := &Command{ID: 1, Work: 10, DynW: 0.5}
	b := &Command{ID: 2, Work: 10, DynW: 0.5}
	d.Dispatch(a)
	d.Dispatch(b)
	// Both run at 0.5 units/ms while overlapping: each takes 20 ms.
	e.RunFor(25 * sim.Millisecond)
	if len(completed) != 2 {
		t.Fatalf("completed %d commands", len(completed))
	}
	for _, c := range completed {
		if got := c.Completed.Sub(c.Dispatched); got != 20*sim.Millisecond {
			t.Fatalf("cmd %d duration = %v want 20ms", c.ID, got)
		}
	}
}

func TestPartialOverlapProgressAccounting(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, testCfg())
	var doneAt = map[uint64]sim.Time{}
	d.OnComplete(func(c *Command) { doneAt[c.ID] = c.Completed })
	d.Dispatch(&Command{ID: 1, Work: 10, DynW: 0.5})
	e.RunFor(4 * sim.Millisecond) // cmd1 has 6 units left
	d.Dispatch(&Command{ID: 2, Work: 3, DynW: 0.5})
	// Overlap at 0.5 u/ms: cmd2 needs 6 ms, cmd1 consumes 3 units in those
	// 6ms leaving 3, then finishes solo in 3 ms.
	e.RunFor(30 * sim.Millisecond)
	if got := doneAt[2]; got != sim.Time(10*sim.Millisecond) {
		t.Fatalf("cmd2 done at %v want 10ms", got)
	}
	if got := doneAt[1]; got != sim.Time(13*sim.Millisecond) {
		t.Fatalf("cmd1 done at %v want 13ms", got)
	}
}

func TestDispatchFullPanics(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, testCfg())
	d.Dispatch(&Command{ID: 1, Work: 1})
	d.Dispatch(&Command{ID: 2, Work: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Dispatch(&Command{ID: 3, Work: 1})
}

func TestZeroWorkPanics(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Dispatch(&Command{ID: 1, Work: 0})
}

func TestFreqScalesRateAndPower(t *testing.T) {
	e := sim.NewEngine()
	cfg := testCfg()
	cfg.FreqsMHz = []float64{500, 1000}
	cfg.InitialFreqIdx = 0
	d := MustNew(e, cfg)
	var done sim.Time
	d.OnComplete(func(c *Command) { done = c.Completed })
	d.Dispatch(&Command{ID: 1, Work: 10, DynW: 0.8})
	// At half frequency: half rate, half dynamic power.
	if math.Abs(d.Rail().Power()-(0.25+0.4)) > 1e-12 {
		t.Fatalf("power at half freq = %v", d.Rail().Power())
	}
	e.RunFor(30 * sim.Millisecond)
	if done != sim.Time(20*sim.Millisecond) {
		t.Fatalf("done at %v want 20ms", done)
	}
}

func TestRestoreMidCommandRecomputes(t *testing.T) {
	e := sim.NewEngine()
	cfg := testCfg()
	cfg.FreqsMHz = []float64{500, 1000}
	cfg.InitialFreqIdx = 1
	d := MustNew(e, cfg)
	var done sim.Time
	d.OnComplete(func(c *Command) { done = c.Completed })
	d.Dispatch(&Command{ID: 1, Work: 10, DynW: 0.8})
	e.RunFor(5 * sim.Millisecond) // 5 units left at full rate
	d.Restore(FreqState{FreqIdx: 0})
	e.RunFor(30 * sim.Millisecond) // remaining 5 units at 0.5 u/ms = 10 ms
	if done != sim.Time(15*sim.Millisecond) {
		t.Fatalf("done at %v want 15ms", done)
	}
}

func TestGovernorRampsWithLoad(t *testing.T) {
	e := sim.NewEngine()
	cfg := GPUConfig()
	d := MustNew(e, cfg)
	if d.FreqIdx() != 0 {
		t.Fatal("should start low")
	}
	// Keep both slots saturated.
	var refill func(*Command)
	var id uint64
	refill = func(*Command) {
		id++
		d.Dispatch(&Command{ID: id, Work: cfg.WorkPerSecAtTop / 10, DynW: 0.5})
	}
	d.OnComplete(refill)
	refill(nil)
	refill(nil)
	e.RunFor(10 * cfg.GovernorWindow)
	if d.FreqIdx() != len(cfg.FreqsMHz)-1 {
		t.Fatalf("freq idx = %d under saturation", d.FreqIdx())
	}
}

func TestGovernorDecaysWhenIdle(t *testing.T) {
	e := sim.NewEngine()
	cfg := GPUConfig()
	cfg.InitialFreqIdx = 2
	d := MustNew(e, cfg)
	e.RunFor(10 * cfg.GovernorWindow)
	if d.FreqIdx() != 0 {
		t.Fatalf("freq idx = %d after idling", d.FreqIdx())
	}
}

func TestUtilizationBounds(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, testCfg())
	d.Dispatch(&Command{ID: 1, Work: 5, DynW: 0.1})
	e.RunFor(10 * sim.Millisecond)
	u := d.Utilization()
	// One slot busy 5 of 10 ms on a 2-slot device = 0.25.
	if math.Abs(u-0.25) > 1e-6 {
		t.Fatalf("utilization = %v want 0.25", u)
	}
}

// Property: for any mix of command sizes, total retired work equals total
// submitted work once the device drains, and commands never complete before
// the minimum possible duration (work at solo rate).
func TestQuickWorkConservation(t *testing.T) {
	f := func(sizes []uint8) bool {
		e := sim.NewEngine()
		d := MustNew(e, testCfg())
		var pending []*Command
		for i, s := range sizes {
			if len(pending) >= 50 {
				break
			}
			w := float64(s%50) + 1
			pending = append(pending, &Command{ID: uint64(i), Work: w, DynW: 0.1})
		}
		completedWork := 0.0
		ok := true
		d.OnComplete(func(c *Command) {
			completedWork += c.Work
			minDur := sim.Duration(c.Work / 1000 * 1e9) // solo rate 1000 u/s
			if c.Completed.Sub(c.Dispatched) < minDur-sim.Microsecond {
				ok = false
			}
			if len(pending) > 0 {
				next := pending[0]
				pending = pending[1:]
				d.Dispatch(next)
			}
		})
		var totalWork float64
		for _, c := range pending {
			totalWork += c.Work
		}
		// Prime both slots.
		for i := 0; i < 2 && len(pending) > 0; i++ {
			d.Dispatch(pending[0])
			pending = pending[1:]
		}
		e.RunFor(sim.Duration(10 * int64(sim.Second)))
		return ok && d.Busy() == 0 && math.Abs(completedWork-totalWork) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
