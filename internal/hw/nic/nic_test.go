package nic

import (
	"math"
	"testing"

	"psbox/internal/sim"
)

func testCfg() Config {
	return Config{
		Name:              "wifi",
		LinkBytesPerSec:   1e6, // 1 byte/µs
		PerPacketOverhead: 100 * sim.Microsecond,
		PSMW:              0.03,
		ActiveW:           []float64{0.5, 0.8},
		TailW:             0.35,
		TailTimeout:       200 * sim.Millisecond,
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{Name: "a", LinkBytesPerSec: 0, ActiveW: []float64{1}},
		{Name: "b", LinkBytesPerSec: 1, ActiveW: nil},
		{Name: "c", LinkBytesPerSec: 1, ActiveW: []float64{1}, TailTimeout: -1},
	}
	for _, cfg := range bad {
		if _, err := New(e, cfg); err == nil {
			t.Errorf("config %q should fail", cfg.Name)
		}
	}
	if _, err := New(e, DefaultConfig()); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestAirTime(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	// 1000 bytes at 1 byte/µs + 100µs overhead = 1.1ms
	if got := n.AirTime(1000); got != 1100*sim.Microsecond {
		t.Fatalf("airtime = %v", got)
	}
}

func TestTransmitLifecycleAndModes(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	var done *Packet
	n.OnComplete(func(p *Packet) { done = p })

	if n.Mode() != ModePSM || n.Rail().Power() != 0.03 {
		t.Fatal("should start in PSM")
	}
	p := &Packet{ID: 1, Bytes: 900} // 1ms airtime
	n.Transmit(p)
	if n.Mode() != ModeActive || n.Rail().Power() != 0.5 || !n.Busy() {
		t.Fatal("active state wrong")
	}
	e.RunFor(1 * sim.Millisecond)
	if done == nil || n.Busy() {
		t.Fatal("transmission should have completed")
	}
	if n.Mode() != ModeTail || n.Rail().Power() != 0.35 {
		t.Fatalf("should be in tail, mode=%v power=%v", n.Mode(), n.Rail().Power())
	}
	e.RunFor(199 * sim.Millisecond)
	if n.Mode() != ModeTail {
		t.Fatal("tail expired early")
	}
	e.RunFor(2 * sim.Millisecond)
	if n.Mode() != ModePSM {
		t.Fatal("tail should have expired")
	}
	if done.Completed.Sub(done.Dispatched) != 1*sim.Millisecond {
		t.Fatalf("airtime recorded %v", done.Completed.Sub(done.Dispatched))
	}
}

func TestBackToBackTransmissionsExtendTail(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	n.Transmit(&Packet{ID: 1, Bytes: 900})
	e.RunFor(1 * sim.Millisecond)
	e.RunFor(100 * sim.Millisecond) // mid-tail
	n.Transmit(&Packet{ID: 2, Bytes: 900})
	e.RunFor(1 * sim.Millisecond)
	// Tail restarts from the second completion.
	e.RunFor(150 * sim.Millisecond)
	if n.Mode() != ModeTail {
		t.Fatal("tail should have been re-armed")
	}
	e.RunFor(51 * sim.Millisecond)
	if n.Mode() != ModePSM {
		t.Fatal("re-armed tail should expire 200ms after second tx")
	}
}

func TestTransmitWhileBusyPanics(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	n.Transmit(&Packet{ID: 1, Bytes: 100})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Transmit(&Packet{ID: 2, Bytes: 100})
}

func TestTxLevelSelectsPower(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	n.SetTxLevel(1)
	n.Transmit(&Packet{ID: 1, Bytes: 100})
	if n.Rail().Power() != 0.8 {
		t.Fatalf("power at level 1 = %v", n.Rail().Power())
	}
	e.RunFor(1 * sim.Second)
}

func TestTailEnergyDominatesShortTransfers(t *testing.T) {
	// The classic WiFi accounting trap: a tiny packet's energy is dwarfed
	// by the tail it triggers.
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	n.Transmit(&Packet{ID: 1, Bytes: 100}) // 200µs airtime
	e.RunFor(250 * sim.Millisecond)
	active := 0.5 * 200e-6
	tail := 0.35 * 0.200
	got := n.Rail().EnergyBetween(0, e.Now())
	idle := 0.03 * (0.250 - 200e-6 - 0.200)
	if math.Abs(got-(active+tail+idle)) > 1e-9 {
		t.Fatalf("energy = %v want %v", got, active+tail+idle)
	}
	if tail < 100*active {
		t.Fatal("test premise broken: tail should dwarf active energy")
	}
}

func TestStateSaveRestoreTail(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	n.SetTxLevel(1)
	n.Transmit(&Packet{ID: 1, Bytes: 900})
	e.RunFor(1 * sim.Millisecond)
	e.RunFor(50 * sim.Millisecond) // 150ms of tail left
	s := n.State()
	if s.Mode != ModeTail || s.TxLevel != 1 {
		t.Fatalf("state = %+v", s)
	}
	if s.TailRemaining != 150*sim.Millisecond {
		t.Fatalf("tail remaining = %v", s.TailRemaining)
	}

	// Another principal uses the NIC; its state is PSM at level 0.
	n.Restore(State{TxLevel: 0, Mode: ModePSM})
	if n.Mode() != ModePSM || n.TxLevel() != 0 {
		t.Fatal("restore to PSM failed")
	}
	e.RunFor(300 * sim.Millisecond)

	// Restoring the saved state resumes the tail where it left off.
	n.Restore(s)
	if n.Mode() != ModeTail || n.TxLevel() != 1 {
		t.Fatal("restore to tail failed")
	}
	e.RunFor(149 * sim.Millisecond)
	if n.Mode() != ModeTail {
		t.Fatal("restored tail expired early")
	}
	e.RunFor(2 * sim.Millisecond)
	if n.Mode() != ModePSM {
		t.Fatal("restored tail should expire after its remaining time")
	}
}

func TestStateWhileTransmittingPanics(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	n.Transmit(&Packet{ID: 1, Bytes: 100})
	for _, f := range []func(){
		func() { n.State() },
		func() { n.Restore(State{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRestoreActivePanics(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	_ = e
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Restore(State{Mode: ModeActive})
}

func TestRestoreZeroTailCollapsesToPSM(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, testCfg())
	n.Restore(State{Mode: ModeTail, TailRemaining: 0})
	if n.Mode() != ModePSM {
		t.Fatalf("mode = %v want psm", n.Mode())
	}
}

func TestModeString(t *testing.T) {
	if ModePSM.String() != "psm" || ModeActive.String() != "active" || ModeTail.String() != "tail" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatal("unknown mode string wrong")
	}
}
