package nic

import "psbox/internal/snapshot"

// Snapshot encodes one frame's lifecycle state.
func (p *Packet) Snapshot(enc *snapshot.Encoder) {
	enc.U64(p.ID)
	enc.I64(int64(p.Owner))
	enc.I64(int64(p.Bytes))
	enc.I64(int64(p.Enqueued))
	enc.I64(int64(p.Dispatched))
	enc.I64(int64(p.Completed))
	enc.I64(int64(p.Retries))
}

// Snapshot encodes the NIC: PSM/active/tail mode, the frame on the air,
// the armed tail and transmission timers, link-flap state, and the power
// rail history.
func (n *NIC) Snapshot(enc *snapshot.Encoder) {
	enc.U8(uint8(n.mode))
	enc.I64(int64(n.txLevel))
	if n.inflight == nil {
		enc.Bool(false)
	} else {
		enc.Bool(true)
		n.inflight.Snapshot(enc)
	}
	enc.U64(n.tailArm.Seq())
	enc.I64(int64(n.tailAt))
	enc.U64(n.txArm.Seq())
	enc.Bool(n.linkDown)
	enc.U64(n.flaps)
	n.rail.Snapshot(enc)
}

// RestoreSnapshot verifies the live NIC against a checkpoint section.
// (Restore is taken by the §4.1 power-state virtualization API.)
func (n *NIC) RestoreSnapshot(dec *snapshot.Decoder) error {
	return snapshot.Verify(dec, n.Snapshot)
}
