// Package nic models a WiFi network interface with the power-state
// structure that makes wireless energy accounting hard: a high-power
// transmission state followed by a lingering tail state governed by a
// power-save timer (the paper's §2.3 "lingering power state" and §4.2
// "Wireless interfaces").
package nic

import (
	"fmt"

	"psbox/internal/hw/power"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// Mode is the NIC's power mode.
type Mode int

const (
	// ModePSM: power-save idle, the baseline state.
	ModePSM Mode = iota
	// ModeActive: transmitting or receiving a frame.
	ModeActive
	// ModeTail: the post-activity high-power lingering state; decays to PSM
	// when the tail timer expires.
	ModeTail
)

func (m Mode) String() string {
	switch m {
	case ModePSM:
		return "psm"
	case ModeActive:
		return "active"
	case ModeTail:
		return "tail"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config describes the NIC.
type Config struct {
	Name string

	// LinkBytesPerSec is the effective MAC throughput; PerPacketOverhead is
	// fixed per-frame airtime (preamble, contention, ACK).
	LinkBytesPerSec   float64
	PerPacketOverhead sim.Duration

	// Power by mode. ActiveW is indexed by transmission power level, the
	// NIC's virtualizable "transmission mode" state.
	PSMW    power.Watts
	ActiveW []power.Watts
	TailW   power.Watts

	// TailTimeout is the power-save timer: how long the NIC lingers in the
	// tail state after activity.
	TailTimeout sim.Duration
}

// DefaultConfig models the TI WiLink8 module of the paper's BeagleBone
// platform, tuned per DESIGN.md §5.
func DefaultConfig() Config {
	return Config{
		Name:              "wifi",
		LinkBytesPerSec:   2.5e6,
		PerPacketOverhead: 300 * sim.Microsecond,
		PSMW:              0.03,
		ActiveW:           []power.Watts{0.55, 0.80},
		TailW:             0.35,
		TailTimeout:       220 * sim.Millisecond,
	}
}

func (c Config) validate() error {
	if c.LinkBytesPerSec <= 0 {
		return fmt.Errorf("nic %q: LinkBytesPerSec must be positive", c.Name)
	}
	if len(c.ActiveW) == 0 {
		return fmt.Errorf("nic %q: need at least one tx power level", c.Name)
	}
	if c.TailTimeout < 0 || c.PerPacketOverhead < 0 {
		return fmt.Errorf("nic %q: negative timeout", c.Name)
	}
	return nil
}

// Packet is one frame handed to the NIC. The kernel's packet scheduler
// fills Owner and the timestamps.
type Packet struct {
	ID    uint64
	Owner int
	Bytes int

	Enqueued   sim.Time // app → socket buffer
	Dispatched sim.Time // scheduler → NIC
	Completed  sim.Time // NIC interrupt

	// Retries counts failed transmission attempts (link flap mid-frame);
	// the packet scheduler backs off and retransmits.
	Retries int
}

// NIC is a simulated wireless interface. It transmits one frame at a time;
// queueing is the kernel's job (internal/kernel/netsched).
type NIC struct {
	eng *sim.Engine
	//psbox:allow-snapshotstate construction-time config; identical by scenario reconstruction under the replay-twin contract
	cfg  Config
	rail *power.Rail

	mode     Mode
	txLevel  int
	inflight *Packet
	tailArm  sim.Handle
	tailAt   sim.Time // when the armed tail timer fires
	txArm    sim.Handle

	linkDown bool
	flaps    uint64

	onComplete []func(*Packet)
	onTxFail   []func(*Packet)
	onLinkUp   []func()
	onIdle     []func()

	// Observability (nil-safe; the bus snapshots itself).
	bus *obs.Bus
}

// SetBus routes power-mode and link transitions to a bus.
func (n *NIC) SetBus(b *obs.Bus) { n.bus = b }

// modeKinds pre-renders the mode-change instant kinds so emission never
// formats strings.
var modeKinds = [...]string{"mode-psm", "mode-active", "mode-tail"}

// New builds an idle NIC in PSM.
func New(eng *sim.Engine, cfg Config) (*NIC, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &NIC{eng: eng, cfg: cfg}
	n.rail = power.NewRail(eng, cfg.Name, cfg.PSMW)
	return n, nil
}

// MustNew is New for statically valid configurations.
func MustNew(eng *sim.Engine, cfg Config) *NIC {
	n, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Rail exposes the NIC's metering scope.
func (n *NIC) Rail() *power.Rail { return n.rail }

// Config returns the configuration the NIC was built with.
func (n *NIC) Config() Config { return n.cfg }

// Mode reports the current power mode.
func (n *NIC) Mode() Mode { return n.mode }

// Busy reports whether a frame is on the air.
func (n *NIC) Busy() bool { return n.inflight != nil }

// IdlePower is the PSM power — what sandboxes are fed while scheduled out.
func (n *NIC) IdlePower() power.Watts { return n.cfg.PSMW }

// TxLevel reports the current transmission power level index.
func (n *NIC) TxLevel() int { return n.txLevel }

// SetTxLevel selects a transmission power level; part of the virtualizable
// power state.
func (n *NIC) SetTxLevel(level int) {
	if level < 0 || level >= len(n.cfg.ActiveW) {
		panic(fmt.Sprintf("nic %s: tx level %d out of range", n.cfg.Name, level))
	}
	n.txLevel = level
	n.updatePower()
}

// OnComplete registers the transmission-done interrupt handler.
func (n *NIC) OnComplete(fn func(*Packet)) { n.onComplete = append(n.onComplete, fn) }

// OnTxFail registers the transmission-failed interrupt handler: the frame
// was on the air when the link dropped and must be retransmitted.
func (n *NIC) OnTxFail(fn func(*Packet)) { n.onTxFail = append(n.onTxFail, fn) }

// OnLinkUp registers a handler fired when a downed link recovers; the
// packet scheduler uses it to resume dispatching.
func (n *NIC) OnLinkUp(fn func()) { n.onLinkUp = append(n.onLinkUp, fn) }

// LinkUp reports whether the link is usable.
func (n *NIC) LinkUp() bool { return !n.linkDown }

// Flaps reports how many times the link has gone down.
func (n *NIC) Flaps() uint64 { return n.flaps }

// SetLink raises or drops the link (fault injection: an AP roam, deep
// fade, or firmware watchdog). Dropping the link with a frame on the air
// fails that transmission — the airtime is burned, the radio falls into its
// tail state, and OnTxFail handlers must arrange retransmission. Raising it
// fires OnLinkUp so the scheduler can resume.
func (n *NIC) SetLink(up bool) {
	if up == !n.linkDown {
		return
	}
	if !up {
		n.linkDown = true
		n.flaps++
		n.bus.Instant(obs.CatNIC, "link-down", 0, int64(n.flaps), n.cfg.Name, n.cfg.Name)
		n.bus.Count("nic.link_flaps", 0, n.cfg.Name, 1)
		if p := n.inflight; p != nil {
			if n.txArm != (sim.Handle{}) {
				n.eng.Cancel(n.txArm)
				n.txArm = sim.Handle{}
			}
			n.inflight = nil
			n.setMode(ModeTail)
			n.armTail(n.cfg.TailTimeout)
			for _, fn := range n.onTxFail {
				fn(p)
			}
		}
		return
	}
	n.linkDown = false
	n.bus.Instant(obs.CatNIC, "link-up", 0, int64(n.flaps), n.cfg.Name, n.cfg.Name)
	for _, fn := range n.onLinkUp {
		fn()
	}
}

// OnIdle registers a handler fired whenever the NIC enters PSM (e.g. the
// tail timer expired). The packet scheduler uses it to advance balloon
// state that waits on the tail.
func (n *NIC) OnIdle(fn func()) { n.onIdle = append(n.onIdle, fn) }

// AirTime reports how long a frame of the given size occupies the medium.
func (n *NIC) AirTime(bytes int) sim.Duration {
	return n.cfg.PerPacketOverhead +
		sim.Duration(float64(bytes)/n.cfg.LinkBytesPerSec*1e9)
}

// Transmit puts p on the air. The NIC handles one frame at a time; the
// packet scheduler must wait for completion before dispatching the next.
func (n *NIC) Transmit(p *Packet) {
	if n.inflight != nil {
		panic(fmt.Sprintf("nic %s: transmit while busy", n.cfg.Name))
	}
	if p.Bytes <= 0 {
		panic(fmt.Sprintf("nic %s: empty packet %d", n.cfg.Name, p.ID))
	}
	if n.linkDown {
		panic(fmt.Sprintf("nic %s: transmit with link down", n.cfg.Name))
	}
	n.disarmTail()
	n.inflight = p
	p.Dispatched = n.eng.Now()
	n.setMode(ModeActive)
	n.txArm = n.eng.After(n.AirTime(p.Bytes), func(sim.Time) { n.finish(p) })
}

func (n *NIC) finish(p *Packet) {
	n.txArm = sim.Handle{}
	p.Completed = n.eng.Now()
	n.inflight = nil
	n.setMode(ModeTail)
	n.armTail(n.cfg.TailTimeout)
	for _, fn := range n.onComplete {
		fn(p)
	}
}

func (n *NIC) armTail(after sim.Duration) {
	n.disarmTail()
	if after <= 0 {
		n.setMode(ModePSM)
		return
	}
	n.tailAt = n.eng.Now().Add(after)
	n.tailArm = n.eng.After(after, func(sim.Time) {
		n.tailArm = sim.Handle{}
		n.setMode(ModePSM)
	})
}

func (n *NIC) disarmTail() {
	if n.tailArm != (sim.Handle{}) {
		n.eng.Cancel(n.tailArm)
		n.tailArm = sim.Handle{}
	}
}

func (n *NIC) setMode(m Mode) {
	prev := n.mode
	n.mode = m
	if m != prev {
		n.bus.Instant(obs.CatNIC, modeKinds[m], 0, int64(prev), n.cfg.Name, n.cfg.Name)
		n.bus.Count("nic.mode_changes", 0, n.cfg.Name, 1)
	}
	n.updatePower()
	if m == ModePSM && prev != ModePSM {
		for _, fn := range n.onIdle {
			fn()
		}
	}
}

func (n *NIC) updatePower() {
	switch n.mode {
	case ModePSM:
		n.rail.Set(n.cfg.PSMW)
	case ModeActive:
		n.rail.Set(n.cfg.ActiveW[n.txLevel])
	case ModeTail:
		n.rail.Set(n.cfg.TailW)
	}
}

// State is the NIC's virtualizable power state (§4.2): transmission mode
// plus the power-save timer position.
type State struct {
	TxLevel       int
	Mode          Mode
	TailRemaining sim.Duration // meaningful only when Mode == ModeTail
}

// State captures the virtualizable power state. It must not be called with
// a frame on the air: the paper's driver drains in-flight requests before
// switching temporal balloons.
func (n *NIC) State() State {
	if n.inflight != nil {
		panic(fmt.Sprintf("nic %s: State() while transmitting; drain first", n.cfg.Name))
	}
	s := State{TxLevel: n.txLevel, Mode: n.mode}
	if n.mode == ModeTail {
		s.TailRemaining = n.tailAt.Sub(n.eng.Now())
		if s.TailRemaining < 0 {
			s.TailRemaining = 0
		}
	}
	return s
}

// Restore reinstates a captured power state, driving an independent tail
// state machine per sandbox.
func (n *NIC) Restore(s State) {
	if n.inflight != nil {
		panic(fmt.Sprintf("nic %s: Restore() while transmitting; drain first", n.cfg.Name))
	}
	if s.TxLevel < 0 || s.TxLevel >= len(n.cfg.ActiveW) {
		panic(fmt.Sprintf("nic %s: restore tx level %d out of range", n.cfg.Name, s.TxLevel))
	}
	n.txLevel = s.TxLevel
	n.disarmTail()
	switch s.Mode {
	case ModeTail:
		n.setMode(ModeTail)
		n.armTail(s.TailRemaining)
	case ModeActive:
		panic(fmt.Sprintf("nic %s: cannot restore active mode", n.cfg.Name))
	default:
		n.setMode(ModePSM)
	}
}
