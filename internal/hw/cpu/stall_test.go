package cpu

import (
	"testing"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

func stallCfg() Config {
	return Config{
		Name:           "cpu",
		Cores:          2,
		FreqsMHz:       []float64{500, 1000},
		ActiveW:        []power.Watts{0.3, 0.8},
		IdleCoreW:      0.05,
		RailBaseW:      0.2,
		InitialFreqIdx: 0, // no governor: explicit control
	}
}

func TestDVFSStallLatchesAndAppliesLastRequest(t *testing.T) {
	eng := sim.NewEngine()
	c := MustNew(eng, stallCfg())
	c.InjectDVFSStall(10 * sim.Millisecond)
	if !c.Stalled() || c.Stalls() != 1 {
		t.Fatal("stall not in effect")
	}
	c.SetFreqIdx(1)
	if c.FreqIdx() != 0 {
		t.Fatal("frequency changed during a transition stall")
	}
	c.SetFreqIdx(0)
	c.SetFreqIdx(1) // latest request wins
	eng.RunFor(5 * sim.Millisecond)
	if c.FreqIdx() != 0 {
		t.Fatal("stall cleared early")
	}
	eng.RunFor(6 * sim.Millisecond)
	if c.Stalled() {
		t.Fatal("stall should have cleared")
	}
	if c.FreqIdx() != 1 {
		t.Fatalf("latched request not applied: freq %d", c.FreqIdx())
	}
}

func TestDVFSStallExtensionsOverlap(t *testing.T) {
	eng := sim.NewEngine()
	c := MustNew(eng, stallCfg())
	c.InjectDVFSStall(10 * sim.Millisecond)
	eng.RunFor(5 * sim.Millisecond)
	c.InjectDVFSStall(20 * sim.Millisecond) // extends to t=25ms
	c.SetFreqIdx(1)
	eng.RunFor(10 * sim.Millisecond) // t=15ms: first stall's end passed
	if !c.Stalled() || c.FreqIdx() != 0 {
		t.Fatal("extension ignored")
	}
	eng.RunFor(11 * sim.Millisecond) // t=26ms
	if c.Stalled() || c.FreqIdx() != 1 {
		t.Fatalf("stalled=%v freq=%d after extension end", c.Stalled(), c.FreqIdx())
	}
	if c.Stalls() != 2 {
		t.Fatalf("stalls = %d", c.Stalls())
	}
}

func TestDVFSStallNoPendingKeepsFrequency(t *testing.T) {
	eng := sim.NewEngine()
	c := MustNew(eng, stallCfg())
	c.SetFreqIdx(1)
	c.InjectDVFSStall(5 * sim.Millisecond)
	eng.RunFor(10 * sim.Millisecond)
	if c.FreqIdx() != 1 {
		t.Fatalf("frequency moved with no request pending: %d", c.FreqIdx())
	}
}
