package cpu

import "psbox/internal/snapshot"

// Snapshot encodes the cluster's DVFS and governor state: operating point,
// per-core busy tracking, governor window accounting, and the DVFS-stall
// fault latch.
func (c *CPU) Snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(c.freqIdx))
	enc.Len(len(c.busy))
	for i := range c.busy {
		enc.Bool(c.busy[i])
		enc.I64(int64(c.busySince[i]))
		enc.I64(int64(c.busyAccum[i]))
	}
	enc.I64(int64(c.windowStart))
	enc.Bool(c.govArmed)
	enc.Bool(c.govSuspended)
	enc.I64(int64(c.stallUntil))
	enc.I64(int64(c.stallPending))
	enc.U64(c.stallArm.Seq())
	enc.U64(c.stalls)
	c.rail.Snapshot(enc)
}

// RestoreSnapshot verifies the live cluster against a checkpoint section.
// (Restore is taken by the §4.1 power-state virtualization API.)
func (c *CPU) RestoreSnapshot(dec *snapshot.Decoder) error {
	return snapshot.Verify(dec, c.Snapshot)
}
