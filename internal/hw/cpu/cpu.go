// Package cpu models a multicore CPU cluster with a single measurable power
// rail and cluster-wide DVFS.
//
// The model deliberately reproduces the three entanglement causes of the
// paper's §2.3 as they apply to CPUs:
//
//   - spatial concurrency: all cores share one rail, and a constant rail/
//     uncore base power is drawn regardless of how many cores are active, so
//     the power of two co-running apps is not the sum of their solo powers
//     (Fig. 3a);
//   - lingering power state: an ondemand-style governor raises the cluster
//     frequency under load and decays it afterwards, so a workload's power
//     depends on what ran before it (Fig. 3c).
package cpu

import (
	"fmt"

	"psbox/internal/hw/power"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// Config describes a CPU cluster.
type Config struct {
	Name  string
	Cores int

	// FreqsMHz lists the operating points, ascending. ActiveW[i] is the
	// per-core power when executing at FreqsMHz[i].
	FreqsMHz []float64
	ActiveW  []power.Watts

	// IdleCoreW is drawn by a clock-gated idle core; RailBaseW is the
	// shared uncore/rail overhead drawn whenever the cluster is on.
	IdleCoreW power.Watts
	RailBaseW power.Watts

	// Governor parameters (ondemand-style). A zero GovernorWindow disables
	// the governor and pins the initial frequency.
	GovernorWindow sim.Duration
	UpThreshold    float64 // raise one step when window utilization exceeds this
	DownThreshold  float64 // lower one step when below this
	InitialFreqIdx int
}

// DefaultConfig models the 2×Cortex-A15 cluster of the paper's AM57x
// platform, tuned per DESIGN.md §5.
func DefaultConfig() Config {
	return Config{
		Name:           "cpu",
		Cores:          2,
		FreqsMHz:       []float64{600, 900, 1200, 1500},
		ActiveW:        []power.Watts{0.55, 0.90, 1.45, 2.05},
		IdleCoreW:      0.12,
		RailBaseW:      0.80,
		GovernorWindow: 20 * sim.Millisecond,
		UpThreshold:    0.80,
		DownThreshold:  0.30,
		InitialFreqIdx: 0,
	}
}

func (c Config) validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("cpu %q: need at least one core", c.Name)
	}
	if len(c.FreqsMHz) == 0 || len(c.FreqsMHz) != len(c.ActiveW) {
		return fmt.Errorf("cpu %q: FreqsMHz and ActiveW must be non-empty and equal length", c.Name)
	}
	for i := 1; i < len(c.FreqsMHz); i++ {
		if c.FreqsMHz[i] <= c.FreqsMHz[i-1] {
			return fmt.Errorf("cpu %q: FreqsMHz must ascend", c.Name)
		}
	}
	if c.InitialFreqIdx < 0 || c.InitialFreqIdx >= len(c.FreqsMHz) {
		return fmt.Errorf("cpu %q: InitialFreqIdx out of range", c.Name)
	}
	return nil
}

// CPU is a simulated multicore cluster.
type CPU struct {
	eng *sim.Engine
	//psbox:allow-snapshotstate construction-time config; identical by scenario reconstruction under the replay-twin contract
	cfg  Config
	rail *power.Rail

	freqIdx   int
	busy      []bool
	busySince []sim.Time

	// Governor window accounting: per-core busy time accumulated since
	// windowStart, excluding still-running busy stretches (those are folded
	// in lazily).
	windowStart  sim.Time
	busyAccum    []sim.Duration
	govArmed     bool
	govSuspended bool

	// DVFS stall fault: while stallUntil is in the future, operating-point
	// changes are latched instead of applied; the latest request is applied
	// when the stall clears.
	stallUntil   sim.Time
	stallPending int // -1: nothing latched
	stallArm     sim.Handle
	stalls       uint64

	onFreqChange []func(oldIdx, newIdx int)

	// Observability (nil-safe; the bus snapshots itself).
	bus *obs.Bus
}

// SetBus routes DVFS transitions and stall events to a bus.
func (c *CPU) SetBus(b *obs.Bus) { c.bus = b }

// New builds a CPU and starts its governor (if configured).
func New(eng *sim.Engine, cfg Config) (*CPU, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &CPU{
		eng:          eng,
		cfg:          cfg,
		freqIdx:      cfg.InitialFreqIdx,
		busy:         make([]bool, cfg.Cores),
		busySince:    make([]sim.Time, cfg.Cores),
		busyAccum:    make([]sim.Duration, cfg.Cores),
		stallPending: -1,
	}
	c.rail = power.NewRail(eng, cfg.Name, c.currentPower())
	c.windowStart = eng.Now()
	if cfg.GovernorWindow > 0 {
		c.govArmed = true
		eng.After(cfg.GovernorWindow, c.governorTick)
	}
	return c, nil
}

// MustNew is New for configurations known statically valid.
func MustNew(eng *sim.Engine, cfg Config) *CPU {
	c, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Rail exposes the cluster's metering scope.
func (c *CPU) Rail() *power.Rail { return c.rail }

// Cores reports the core count.
func (c *CPU) Cores() int { return c.cfg.Cores }

// Config returns the configuration the CPU was built with.
func (c *CPU) Config() Config { return c.cfg }

// FreqIdx reports the current operating point index.
func (c *CPU) FreqIdx() int { return c.freqIdx }

// FreqMHz reports the current clock in MHz.
func (c *CPU) FreqMHz() float64 { return c.cfg.FreqsMHz[c.freqIdx] }

// CyclesPerSecond reports the execution rate a busy core sustains now.
func (c *CPU) CyclesPerSecond() float64 { return c.FreqMHz() * 1e6 }

// TopFreqIdx reports the highest operating point index.
func (c *CPU) TopFreqIdx() int { return len(c.cfg.FreqsMHz) - 1 }

// IdlePower reports the rail power when every core idles at the lowest
// operating point — the "idle power" fed to power sandboxes while they are
// scheduled out (§4.1).
func (c *CPU) IdlePower() power.Watts {
	return c.cfg.RailBaseW + power.Watts(c.cfg.Cores)*c.cfg.IdleCoreW
}

// OnFreqChange registers a callback invoked after every operating-point
// change. The kernel scheduler uses this to recompute in-flight completion
// times.
func (c *CPU) OnFreqChange(fn func(oldIdx, newIdx int)) {
	c.onFreqChange = append(c.onFreqChange, fn)
}

// CoreBusy reports whether a core is currently executing.
func (c *CPU) CoreBusy(core int) bool { return c.busy[core] }

// SetCoreBusy marks a core executing (busy=true) or idle. The kernel calls
// this on every context switch to/from the idle task.
func (c *CPU) SetCoreBusy(core int, busy bool) {
	if core < 0 || core >= c.cfg.Cores {
		panic(fmt.Sprintf("cpu %s: core %d out of range", c.cfg.Name, core))
	}
	if c.busy[core] == busy {
		return
	}
	now := c.eng.Now()
	if busy {
		c.busySince[core] = now
	} else {
		from := c.busySince[core]
		if from < c.windowStart {
			from = c.windowStart
		}
		c.busyAccum[core] += now.Sub(from)
	}
	c.busy[core] = busy
	c.rail.Set(c.currentPower())
}

// SetFreqIdx pins the operating point directly. Power-state virtualization
// (§4.1) uses this to restore a sandbox's saved frequency at balloon switch.
func (c *CPU) SetFreqIdx(idx int) {
	if idx < 0 || idx >= len(c.cfg.FreqsMHz) {
		panic(fmt.Sprintf("cpu %s: freq index %d out of range", c.cfg.Name, idx))
	}
	c.setFreq(idx)
	// A direct set also restarts the governor window: cpufreq re-initializes
	// its accounting when a new policy is loaded.
	c.resetWindow()
}

// GovState is the virtualizable operating/idle power state of the cluster:
// the DVFS operating point. (The governor's window accumulators are reset at
// every restore, as cpufreq does when a policy is reloaded.)
type GovState struct {
	FreqIdx int
}

// State captures the cluster's virtualizable power state.
func (c *CPU) State() GovState { return GovState{FreqIdx: c.freqIdx} }

// Restore reinstates a previously captured power state.
func (c *CPU) Restore(s GovState) { c.SetFreqIdx(s.FreqIdx) }

func (c *CPU) currentPower() power.Watts {
	p := c.cfg.RailBaseW
	for _, b := range c.busy {
		if b {
			p += c.cfg.ActiveW[c.freqIdx]
		} else {
			p += c.cfg.IdleCoreW
		}
	}
	return p
}

// Stalled reports whether a DVFS transition stall is in effect.
func (c *CPU) Stalled() bool { return c.eng.Now() < c.stallUntil }

// Stalls reports how many stall faults have been injected.
func (c *CPU) Stalls() uint64 { return c.stalls }

// InjectDVFSStall wedges the frequency-transition path for d (fault
// injection: a voltage regulator handshake timing out, clock-tree PLL
// relock). Operating-point changes requested meanwhile — by the governor,
// by psbox power-state restores — are latched, and the latest one is
// applied when the stall clears. Overlapping injections extend the stall.
func (c *CPU) InjectDVFSStall(d sim.Duration) {
	if d <= 0 {
		return
	}
	c.stalls++
	c.bus.Instant(obs.CatDVFS, "stall-begin", 0, int64(d), c.cfg.Name, c.cfg.Name)
	c.bus.Count("dvfs.stalls", 0, c.cfg.Name, 1)
	until := c.eng.Now().Add(d)
	if until <= c.stallUntil {
		return
	}
	c.stallUntil = until
	if c.stallArm != (sim.Handle{}) {
		c.eng.Cancel(c.stallArm)
	}
	c.stallArm = c.eng.At(until, c.endStall)
}

func (c *CPU) endStall(sim.Time) {
	c.stallArm = sim.Handle{}
	if c.eng.Now() < c.stallUntil {
		// An overlapping injection extended the stall after this event was
		// armed; the extension armed its own.
		return
	}
	pend := c.stallPending
	c.stallPending = -1
	c.bus.Instant(obs.CatDVFS, "stall-end", 0, int64(pend), c.cfg.Name, c.cfg.Name)
	if pend >= 0 {
		c.setFreq(pend)
	}
}

func (c *CPU) setFreq(idx int) {
	if c.Stalled() {
		c.stallPending = idx
		return
	}
	if idx == c.freqIdx {
		return
	}
	old := c.freqIdx
	// Fold running busy time into the window at the old frequency before
	// the rate changes; callbacks will recompute completions at the new one.
	c.foldBusy()
	c.freqIdx = idx
	c.rail.Set(c.currentPower())
	// Arg packs the transition (old index in the high half) so one scalar
	// captures both endpoints without per-event formatting.
	c.bus.Instant(obs.CatDVFS, "freq-change", 0, int64(old)<<32|int64(idx), c.cfg.Name, c.cfg.Name)
	c.bus.Count("dvfs.transitions", 0, c.cfg.Name, 1)
	c.bus.Gauge("dvfs.freq_mhz", 0, c.cfg.Name, c.cfg.FreqsMHz[idx])
	for _, fn := range c.onFreqChange {
		fn(old, idx)
	}
}

// foldBusy charges all still-busy stretches into busyAccum up to now.
func (c *CPU) foldBusy() {
	now := c.eng.Now()
	for i, b := range c.busy {
		if !b {
			continue
		}
		from := c.busySince[i]
		if from < c.windowStart {
			from = c.windowStart
		}
		c.busyAccum[i] += now.Sub(from)
		c.busySince[i] = now
	}
}

func (c *CPU) resetWindow() {
	c.windowStart = c.eng.Now()
	for i := range c.busyAccum {
		c.busyAccum[i] = 0
	}
	for i := range c.busySince {
		if c.busy[i] {
			c.busySince[i] = c.windowStart
		}
	}
}

// Utilization reports the governor's load signal: the maximum per-core
// busy fraction over the current window, in [0, 1]. Cluster-wide DVFS
// policies follow the busiest core (as Linux cpufreq does), so a single
// saturated core raises the shared clock.
func (c *CPU) Utilization() float64 {
	now := c.eng.Now()
	span := now.Sub(c.windowStart)
	if span <= 0 {
		return 0
	}
	var max float64
	for i := range c.busyAccum {
		busy := c.busyAccum[i]
		if c.busy[i] {
			from := c.busySince[i]
			if from < c.windowStart {
				from = c.windowStart
			}
			busy += now.Sub(from)
		}
		if u := float64(busy) / float64(span); u > max {
			max = u
		}
	}
	return max
}

func (c *CPU) governorTick(now sim.Time) {
	if !c.govSuspended {
		util := c.Utilization()
		switch {
		case util > c.cfg.UpThreshold && c.freqIdx < c.TopFreqIdx():
			c.setFreq(c.freqIdx + 1)
		case util < c.cfg.DownThreshold && c.freqIdx > 0:
			c.setFreq(c.freqIdx - 1)
		}
	}
	c.resetWindow()
	c.eng.After(c.cfg.GovernorWindow, c.governorTick)
}

// SuspendGovernor stops the hardware governor from adjusting the operating
// point (its window keeps turning over). The psbox layer suspends it while
// a sandbox's spatial balloon is resident: the sandbox's frequency is then
// owned by its *virtual* governor, so the co-runners' utilization cannot
// contaminate the sandbox's power state (§4.1).
func (c *CPU) SuspendGovernor() { c.govSuspended = true }

// ResumeGovernor re-enables hardware governor adjustments.
func (c *CPU) ResumeGovernor() { c.govSuspended = false }
