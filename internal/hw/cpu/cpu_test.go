package cpu

import (
	"math"
	"testing"

	"psbox/internal/sim"
)

func fixedCfg() Config {
	cfg := DefaultConfig()
	cfg.GovernorWindow = 0 // pin frequency
	cfg.InitialFreqIdx = 3
	return cfg
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{Name: "a", Cores: 0, FreqsMHz: []float64{1}, ActiveW: []float64{1}},
		{Name: "b", Cores: 1, FreqsMHz: nil, ActiveW: nil},
		{Name: "c", Cores: 1, FreqsMHz: []float64{2, 1}, ActiveW: []float64{1, 1}},
		{Name: "d", Cores: 1, FreqsMHz: []float64{1}, ActiveW: []float64{1}, InitialFreqIdx: 5},
		{Name: "e", Cores: 1, FreqsMHz: []float64{1, 2}, ActiveW: []float64{1}},
	}
	for _, cfg := range bad {
		if _, err := New(e, cfg); err == nil {
			t.Errorf("config %q should fail validation", cfg.Name)
		}
	}
	if _, err := New(e, DefaultConfig()); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestIdlePowerAndBusyPower(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, fixedCfg())
	wantIdle := 0.80 + 2*0.12
	if got := c.Rail().Power(); math.Abs(got-wantIdle) > 1e-12 {
		t.Fatalf("idle power = %v want %v", got, wantIdle)
	}
	c.SetCoreBusy(0, true)
	want := 0.80 + 2.05 + 0.12
	if got := c.Rail().Power(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("one busy = %v want %v", got, want)
	}
	c.SetCoreBusy(1, true)
	want = 0.80 + 2*2.05
	if got := c.Rail().Power(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("two busy = %v want %v", got, want)
	}
}

// The heart of Fig. 3(a): duo power must be strictly less than double the
// solo power, because the rail base and the second core's idle power are
// counted twice by the doubling extrapolation.
func TestSpatialEntanglementShape(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, fixedCfg())
	c.SetCoreBusy(0, true)
	solo := c.Rail().Power()
	c.SetCoreBusy(1, true)
	duo := c.Rail().Power()
	if duo >= 2*solo {
		t.Fatalf("no entanglement: duo %v >= 2×solo %v", duo, 2*solo)
	}
	if duo <= solo {
		t.Fatalf("second core added no power: %v <= %v", duo, solo)
	}
}

func TestGovernorRampsUpUnderLoad(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	c := MustNew(e, cfg)
	if c.FreqIdx() != 0 {
		t.Fatal("should start at lowest OPP")
	}
	c.SetCoreBusy(0, true)
	c.SetCoreBusy(1, true)
	e.RunFor(5 * cfg.GovernorWindow)
	if c.FreqIdx() != c.TopFreqIdx() {
		t.Fatalf("freq idx = %d after sustained load, want %d", c.FreqIdx(), c.TopFreqIdx())
	}
}

func TestGovernorDecaysWhenIdle(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	c := MustNew(e, cfg)
	c.SetCoreBusy(0, true)
	c.SetCoreBusy(1, true)
	e.RunFor(5 * cfg.GovernorWindow)
	c.SetCoreBusy(0, false)
	c.SetCoreBusy(1, false)
	e.RunFor(10 * cfg.GovernorWindow)
	if c.FreqIdx() != 0 {
		t.Fatalf("freq idx = %d after long idle, want 0", c.FreqIdx())
	}
}

// Fig. 3(c): the same burst consumes more power right after a busy period
// (cluster still clocked high) than after idleness.
func TestLingeringPowerState(t *testing.T) {
	run := func(preheat bool) float64 {
		e := sim.NewEngine()
		cfg := DefaultConfig()
		c := MustNew(e, cfg)
		if preheat {
			c.SetCoreBusy(0, true)
			c.SetCoreBusy(1, true)
			e.RunFor(6 * cfg.GovernorWindow)
			c.SetCoreBusy(0, false)
			c.SetCoreBusy(1, false)
			e.RunFor(1 * sim.Millisecond) // brief gap, freq still high
		} else {
			e.RunFor(6*cfg.GovernorWindow + 1*sim.Millisecond)
		}
		start := e.Now()
		c.SetCoreBusy(0, true)
		e.RunFor(5 * sim.Millisecond)
		c.SetCoreBusy(0, false)
		return c.Rail().EnergyBetween(start, e.Now())
	}
	hot, cold := run(true), run(false)
	if hot <= cold {
		t.Fatalf("lingering state missing: after-busy %v J <= after-idle %v J", hot, cold)
	}
}

func TestUtilizationFollowsBusiestCore(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, fixedCfg())
	c.SetCoreBusy(0, true)
	e.RunFor(10 * sim.Millisecond)
	// One saturated core on a two-core cluster: the DVFS load signal is
	// the max per-core utilization, i.e. 1.0.
	if u := c.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("utilization = %v want 1.0", u)
	}
}

func TestUtilizationCountsRunningStretch(t *testing.T) {
	e := sim.NewEngine()
	cfg := fixedCfg()
	cfg.Cores = 1
	c := MustNew(e, cfg)
	e.RunFor(5 * sim.Millisecond)
	c.SetCoreBusy(0, true)
	e.RunFor(5 * sim.Millisecond)
	// 5ms idle + 5ms busy (still running) over 10ms window.
	if u := c.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v want 0.5", u)
	}
}

func TestStateSaveRestore(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	c := MustNew(e, cfg)
	c.SetCoreBusy(0, true)
	c.SetCoreBusy(1, true)
	e.RunFor(5 * cfg.GovernorWindow)
	high := c.State()
	if high.FreqIdx != c.TopFreqIdx() {
		t.Fatalf("saved state %+v", high)
	}
	c.Restore(GovState{FreqIdx: 0})
	if c.FreqIdx() != 0 {
		t.Fatal("restore to 0 failed")
	}
	c.Restore(high)
	if c.FreqIdx() != c.TopFreqIdx() {
		t.Fatal("restore to high failed")
	}
}

func TestOnFreqChangeFires(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, fixedCfg())
	var olds, news []int
	c.OnFreqChange(func(o, n int) { olds = append(olds, o); news = append(news, n) })
	c.SetFreqIdx(1)
	c.SetFreqIdx(1) // no-op
	c.SetFreqIdx(2)
	if len(olds) != 2 || olds[0] != 3 || news[0] != 1 || olds[1] != 1 || news[1] != 2 {
		t.Fatalf("callbacks: olds=%v news=%v", olds, news)
	}
}

func TestIdlePowerHelper(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, fixedCfg())
	if got, want := c.IdlePower(), 0.80+2*0.12; math.Abs(got-want) > 1e-12 {
		t.Fatalf("IdlePower = %v want %v", got, want)
	}
}

func TestSetCoreBusyBounds(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, fixedCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range core")
		}
	}()
	c.SetCoreBusy(7, true)
}

func TestEnergyAccountsFreqChanges(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, fixedCfg())
	c.SetCoreBusy(0, true)
	e.RunFor(10 * sim.Millisecond)
	c.SetFreqIdx(0)
	e.RunFor(10 * sim.Millisecond)
	c.SetCoreBusy(0, false)
	hi := (0.80 + 2.05 + 0.12) * 0.010
	lo := (0.80 + 0.55 + 0.12) * 0.010
	got := c.Rail().EnergyBetween(0, e.Now())
	if math.Abs(got-(hi+lo)) > 1e-9 {
		t.Fatalf("energy = %v want %v", got, hi+lo)
	}
}

func TestSuspendGovernor(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	c := MustNew(e, cfg)
	c.SuspendGovernor()
	c.SetCoreBusy(0, true)
	c.SetCoreBusy(1, true)
	e.RunFor(10 * cfg.GovernorWindow)
	if c.FreqIdx() != 0 {
		t.Fatalf("suspended governor still ramped to %d", c.FreqIdx())
	}
	c.ResumeGovernor()
	e.RunFor(10 * cfg.GovernorWindow)
	if c.FreqIdx() != c.TopFreqIdx() {
		t.Fatalf("resumed governor stuck at %d", c.FreqIdx())
	}
}
