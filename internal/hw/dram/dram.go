// Package dram models main-memory power at DIMM granularity, the paper's
// §7(4) extension case. DRAM power follows the aggregate access stream:
// a background (refresh/standby) component plus a dynamic component
// proportional to bandwidth. Entanglement arises exactly as on the CPU
// rail — concurrent cores' streams merge — and the paper suggests psbox
// can cover DRAM "through temporal balloons". In this model the CPU is the
// only DRAM master, so the CPU's *spatial* balloons already bound the DRAM
// stream: while a sandbox's coscheduling window is open, all traffic on
// the DIMM is the sandbox's.
package dram

import (
	"fmt"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// Config describes the DIMM.
type Config struct {
	Name string

	// BackgroundW is refresh/standby power, always drawn.
	BackgroundW power.Watts

	// WPerGBs is the dynamic power per GB/s of access bandwidth.
	WPerGBs power.Watts

	// MaxGBs caps the aggregate bandwidth (the channel's limit).
	MaxGBs float64
}

// DefaultConfig models a single LPDDR channel of an embedded SoC.
func DefaultConfig() Config {
	return Config{
		Name:        "dram",
		BackgroundW: 0.08,
		WPerGBs:     0.11,
		MaxGBs:      6.4,
	}
}

func (c Config) validate() error {
	if c.BackgroundW < 0 || c.WPerGBs < 0 {
		return fmt.Errorf("dram %q: negative power", c.Name)
	}
	if c.MaxGBs <= 0 {
		return fmt.Errorf("dram %q: MaxGBs must be positive", c.Name)
	}
	return nil
}

// DRAM is a simulated memory channel. The kernel reports each core's
// current access stream; the model sums them (capped) into rail power.
type DRAM struct {
	eng *sim.Engine
	//psbox:allow-snapshotstate construction-time config; identical by scenario reconstruction under the replay-twin contract
	cfg     Config
	rail    *power.Rail
	streams []float64 // per-core GB/s
}

// New builds an idle channel for a CPU with the given core count.
func New(eng *sim.Engine, cfg Config, cores int) (*DRAM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("dram %q: need at least one master core", cfg.Name)
	}
	d := &DRAM{eng: eng, cfg: cfg, streams: make([]float64, cores)}
	d.rail = power.NewRail(eng, cfg.Name, cfg.BackgroundW)
	return d, nil
}

// MustNew is New for statically valid configurations.
func MustNew(eng *sim.Engine, cfg Config, cores int) *DRAM {
	d, err := New(eng, cfg, cores)
	if err != nil {
		panic(err)
	}
	return d
}

// Rail exposes the channel's metering scope.
func (d *DRAM) Rail() *power.Rail { return d.rail }

// Config returns the configuration.
func (d *DRAM) Config() Config { return d.cfg }

// IdlePower is the background power — what sandboxes are fed while their
// balloon is out.
func (d *DRAM) IdlePower() power.Watts { return d.cfg.BackgroundW }

// SetCoreStream reports core's current access bandwidth in GB/s. The
// kernel calls this on every context switch and frequency change.
func (d *DRAM) SetCoreStream(core int, gbs float64) {
	if core < 0 || core >= len(d.streams) {
		panic(fmt.Sprintf("dram %s: core %d out of range", d.cfg.Name, core))
	}
	if gbs < 0 {
		panic(fmt.Sprintf("dram %s: negative bandwidth", d.cfg.Name))
	}
	d.streams[core] = gbs
	d.update()
}

// Bandwidth reports the current aggregate stream in GB/s (after the
// channel cap).
func (d *DRAM) Bandwidth() float64 {
	var total float64
	for _, s := range d.streams {
		total += s
	}
	if total > d.cfg.MaxGBs {
		total = d.cfg.MaxGBs
	}
	return total
}

func (d *DRAM) update() {
	d.rail.Set(d.cfg.BackgroundW + d.cfg.WPerGBs*d.Bandwidth())
}
