package dram

import (
	"math"
	"testing"

	"psbox/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{Name: "a", BackgroundW: -1, MaxGBs: 1},
		{Name: "b", WPerGBs: -1, MaxGBs: 1},
		{Name: "c", MaxGBs: 0},
	}
	for _, cfg := range bad {
		if _, err := New(e, cfg, 2); err == nil {
			t.Errorf("config %q should fail", cfg.Name)
		}
	}
	if _, err := New(e, DefaultConfig(), 0); err == nil {
		t.Error("zero cores should fail")
	}
	if _, err := New(e, DefaultConfig(), 2); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFollowsBandwidth(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	d := MustNew(e, cfg, 2)
	if d.Rail().Power() != cfg.BackgroundW {
		t.Fatal("idle power wrong")
	}
	d.SetCoreStream(0, 2.0)
	want := cfg.BackgroundW + cfg.WPerGBs*2.0
	if math.Abs(d.Rail().Power()-want) > 1e-12 {
		t.Fatalf("power = %v want %v", d.Rail().Power(), want)
	}
	d.SetCoreStream(1, 1.5)
	want = cfg.BackgroundW + cfg.WPerGBs*3.5
	if math.Abs(d.Rail().Power()-want) > 1e-12 {
		t.Fatalf("aggregate power = %v want %v", d.Rail().Power(), want)
	}
	d.SetCoreStream(0, 0)
	d.SetCoreStream(1, 0)
	if d.Rail().Power() != cfg.BackgroundW {
		t.Fatal("power should return to background")
	}
}

func TestChannelCap(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	d := MustNew(e, cfg, 2)
	d.SetCoreStream(0, cfg.MaxGBs)
	d.SetCoreStream(1, cfg.MaxGBs)
	if d.Bandwidth() != cfg.MaxGBs {
		t.Fatalf("bandwidth %v should cap at %v", d.Bandwidth(), cfg.MaxGBs)
	}
}

func TestSetCoreStreamValidation(t *testing.T) {
	e := sim.NewEngine()
	d := MustNew(e, DefaultConfig(), 2)
	for _, f := range []func(){
		func() { d.SetCoreStream(5, 1) },
		func() { d.SetCoreStream(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
