package dram

import "psbox/internal/snapshot"

// Snapshot encodes the channel: per-core access streams and the rail
// history.
func (d *DRAM) Snapshot(enc *snapshot.Encoder) {
	enc.Len(len(d.streams))
	for _, gbs := range d.streams {
		enc.F64(gbs)
	}
	d.rail.Snapshot(enc)
}

// Restore verifies the live channel against a checkpoint section.
func (d *DRAM) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, d.Snapshot) }
