package power

import "psbox/internal/snapshot"

// Snapshot encodes the rail's full piecewise-constant power history. Rails
// are the ground truth every meter integrates, so checkpoint verification
// of the segment list catches any power-model divergence at its source.
func (r *Rail) Snapshot(enc *snapshot.Encoder) {
	enc.Str(r.name)
	enc.Len(len(r.segs))
	for _, s := range r.segs {
		enc.I64(int64(s.start))
		enc.F64(float64(s.w))
	}
}

// Restore verifies the live rail against a checkpoint section.
func (r *Rail) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, r.Snapshot) }
