package power

import "psbox/internal/sim"

// SumRail builds an aggregating rail that always carries the sum of its
// input rails — the "battery rail" view of a platform whose components are
// metered individually. It subscribes to the inputs' change notifications,
// so it stays exact (piecewise constant with breakpoints at every input
// transition).
//
// The sum rail is read-only by convention: callers must not Set it.
func SumRail(eng *sim.Engine, name string, inputs ...*Rail) *Rail {
	var total Watts
	for _, in := range inputs {
		total += in.Power()
	}
	out := NewRail(eng, name, total)
	for _, in := range inputs {
		in := in
		prev := in.Power()
		in.OnChange(func(w Watts) {
			out.Set(out.Power() - prev + w)
			prev = w
		})
	}
	return out
}
