// Package power models measurable power rails.
//
// A Rail is one hardware power-metering scope (the paper's platforms expose
// four: CPU, GPU, DSP and WiFi). Components record every power-state change
// into their rail, making rail power an exact piecewise-constant function of
// simulated time. Metering (internal/meter) then *samples* the rail like a
// DAQ would, while energy queries integrate the underlying function exactly.
package power

import (
	"fmt"
	"sort"

	"psbox/internal/sim"
)

// Watts is instantaneous power in watts.
type Watts = float64

// Joules is energy in joules.
type Joules = float64

// Sample is one timestamped power reading, as a DAQ would deliver it.
type Sample struct {
	T sim.Time
	W Watts
}

type segment struct {
	start sim.Time
	w     Watts
}

// Rail records the power drawn through one metering scope as a
// piecewise-constant function of time.
type Rail struct {
	name     string
	eng      *sim.Engine
	segs     []segment
	onChange []func(Watts)
}

// OnChange registers a callback fired after every effective power change
// (coalesced sets do not fire). Aggregating rails subscribe through it.
func (r *Rail) OnChange(fn func(Watts)) { r.onChange = append(r.onChange, fn) }

// NewRail creates a rail that draws initial watts from time zero.
func NewRail(eng *sim.Engine, name string, initial Watts) *Rail {
	if initial < 0 {
		panic("power: negative initial power")
	}
	return &Rail{
		name: name,
		eng:  eng,
		segs: []segment{{start: 0, w: initial}},
	}
}

// Name reports the rail's metering-scope name.
func (r *Rail) Name() string { return r.name }

// Power reports the instantaneous power right now.
func (r *Rail) Power() Watts { return r.segs[len(r.segs)-1].w }

// Set records that the rail draws w watts from the current instant onward.
// Redundant sets (same value) are coalesced.
func (r *Rail) Set(w Watts) {
	if w < 0 {
		panic(fmt.Sprintf("power: rail %s set to negative %v W", r.name, w))
	}
	now := r.eng.Now()
	last := &r.segs[len(r.segs)-1]
	if last.w == w {
		return
	}
	if last.start == now {
		// Multiple transitions at the same instant: keep only the final one,
		// but avoid creating a zero-length duplicate of the previous value.
		last.w = w
		if len(r.segs) >= 2 && r.segs[len(r.segs)-2].w == w {
			r.segs = r.segs[:len(r.segs)-1]
		}
	} else {
		r.segs = append(r.segs, segment{start: now, w: w})
	}
	for _, fn := range r.onChange {
		fn(w)
	}
}

// Adjust adds delta watts from now onward. Components with additive power
// contributions (e.g. per-pixel display power) use this.
func (r *Rail) Adjust(delta Watts) { r.Set(r.Power() + delta) }

// locate returns the index of the segment containing t.
func (r *Rail) locate(t sim.Time) int {
	// First segment with start > t, minus one.
	i := sort.Search(len(r.segs), func(i int) bool { return r.segs[i].start > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// PowerAt reports the power drawn at instant t (t must not be in the
// future; the rail only knows the past and present).
func (r *Rail) PowerAt(t sim.Time) Watts {
	if t > r.eng.Now() {
		panic("power: PowerAt in the future")
	}
	if t < 0 {
		t = 0
	}
	return r.segs[r.locate(t)].w
}

// EnergyBetween integrates rail power exactly over [a, b).
func (r *Rail) EnergyBetween(a, b sim.Time) Joules {
	if b <= a {
		return 0
	}
	if b > r.eng.Now() {
		panic("power: EnergyBetween reaching into the future")
	}
	var e Joules
	i := r.locate(a)
	for ; i < len(r.segs); i++ {
		segStart := r.segs[i].start
		segEnd := b
		if i+1 < len(r.segs) && r.segs[i+1].start < b {
			segEnd = r.segs[i+1].start
		}
		if segStart < a {
			segStart = a
		}
		if segEnd > segStart {
			e += r.segs[i].w * segEnd.Sub(segStart).Seconds()
		}
		if segEnd == b {
			break
		}
	}
	return e
}

// SamplesBetween synthesizes DAQ samples over [a, b) at the given period,
// appending to dst and returning it. The first sample lands on the first
// multiple of period ≥ a, mirroring a free-running ADC.
func (r *Rail) SamplesBetween(a, b sim.Time, period sim.Duration, dst []Sample) []Sample {
	if period <= 0 {
		panic("power: non-positive sample period")
	}
	first := (int64(a) + int64(period) - 1) / int64(period) * int64(period)
	for t := sim.Time(first); t < b; t = t.Add(period) {
		dst = append(dst, Sample{T: t, W: r.PowerAt(t)})
	}
	return dst
}

// Segments returns the number of recorded power transitions; used by tests
// and by trace rendering.
func (r *Rail) Segments() int { return len(r.segs) }

// Breakpoints appends every (start, watts) transition in [a, b) to dst.
// Trace rendering uses this to draw exact power curves.
func (r *Rail) Breakpoints(a, b sim.Time, dst []Sample) []Sample {
	i := r.locate(a)
	for ; i < len(r.segs); i++ {
		if r.segs[i].start >= b {
			break
		}
		t := r.segs[i].start
		if t < a {
			t = a
		}
		dst = append(dst, Sample{T: t, W: r.segs[i].w})
	}
	return dst
}

// TrimBefore discards transition history strictly before t, keeping the
// value in effect at t as the new first segment. Long-running simulations
// call this to bound memory.
func (r *Rail) TrimBefore(t sim.Time) {
	i := r.locate(t)
	if i == 0 {
		return
	}
	kept := r.segs[i:]
	first := segment{start: t, w: kept[0].w}
	if kept[0].start < t {
		kept[0] = first
	}
	r.segs = append(r.segs[:0], kept...)
}
