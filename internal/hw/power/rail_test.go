package power

import (
	"math"
	"testing"
	"testing/quick"

	"psbox/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRailInitial(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "cpu", 0.5)
	if r.Power() != 0.5 || r.Name() != "cpu" {
		t.Fatal("initial state wrong")
	}
	e.Run(sim.Time(1 * sim.Second))
	if got := r.EnergyBetween(0, sim.Time(1*sim.Second)); !almost(got, 0.5) {
		t.Fatalf("energy = %v", got)
	}
}

func TestRailSetAndIntegrate(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "cpu", 1.0)
	e.At(sim.Time(100*sim.Millisecond), func(sim.Time) { r.Set(3.0) })
	e.At(sim.Time(300*sim.Millisecond), func(sim.Time) { r.Set(0.0) })
	e.Run(sim.Time(1 * sim.Second))
	// 0.1s@1W + 0.2s@3W + 0.7s@0W = 0.1 + 0.6 = 0.7 J
	if got := r.EnergyBetween(0, sim.Time(1*sim.Second)); !almost(got, 0.7) {
		t.Fatalf("energy = %v", got)
	}
	// Sub-intervals.
	if got := r.EnergyBetween(sim.Time(50*sim.Millisecond), sim.Time(150*sim.Millisecond)); !almost(got, 0.05+0.15) {
		t.Fatalf("partial energy = %v", got)
	}
	if got := r.EnergyBetween(sim.Time(400*sim.Millisecond), sim.Time(900*sim.Millisecond)); !almost(got, 0) {
		t.Fatalf("zero-power energy = %v", got)
	}
}

func TestRailPowerAt(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "gpu", 0.2)
	e.At(10, func(sim.Time) { r.Set(1.5) })
	e.Run(20)
	if r.PowerAt(9) != 0.2 || r.PowerAt(10) != 1.5 || r.PowerAt(20) != 1.5 {
		t.Fatal("PowerAt wrong around breakpoint")
	}
}

func TestRailCoalescing(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "x", 1)
	e.At(5, func(sim.Time) {
		r.Set(1) // redundant
		r.Set(2)
		r.Set(3) // same-instant overwrite
	})
	e.At(7, func(sim.Time) {
		r.Set(4)
		r.Set(3) // back to previous value at same instant: segment removed
	})
	e.Run(10)
	if r.Segments() != 2 {
		t.Fatalf("segments = %d, want 2", r.Segments())
	}
	if r.PowerAt(6) != 3 || r.PowerAt(8) != 3 {
		t.Fatal("coalesced values wrong")
	}
}

func TestRailAdjust(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "disp", 0.1)
	e.At(1, func(sim.Time) { r.Adjust(0.4) })
	e.At(2, func(sim.Time) { r.Adjust(-0.2) })
	e.Run(3)
	if !almost(r.Power(), 0.3) {
		t.Fatalf("power = %v", r.Power())
	}
}

func TestRailSamples(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "cpu", 1)
	e.At(sim.Time(25*sim.Microsecond), func(sim.Time) { r.Set(2) })
	e.Run(sim.Time(100 * sim.Microsecond))
	s := r.SamplesBetween(0, sim.Time(100*sim.Microsecond), 10*sim.Microsecond, nil)
	if len(s) != 10 {
		t.Fatalf("got %d samples", len(s))
	}
	if s[0].T != 0 || s[0].W != 1 {
		t.Fatalf("sample 0 = %+v", s[0])
	}
	if s[2].W != 1 || s[3].W != 2 {
		t.Fatalf("samples around breakpoint: %v %v", s[2], s[3])
	}
	// Non-aligned start rounds up to the next tick.
	s2 := r.SamplesBetween(sim.Time(15*sim.Microsecond), sim.Time(45*sim.Microsecond), 10*sim.Microsecond, nil)
	if len(s2) != 3 || s2[0].T != sim.Time(20*sim.Microsecond) {
		t.Fatalf("aligned samples wrong: %+v", s2)
	}
}

func TestRailBreakpoints(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "cpu", 1)
	e.At(10, func(sim.Time) { r.Set(2) })
	e.At(20, func(sim.Time) { r.Set(3) })
	e.Run(30)
	bp := r.Breakpoints(5, 25, nil)
	if len(bp) != 3 || bp[0].T != 5 || bp[0].W != 1 || bp[1].T != 10 || bp[2].T != 20 {
		t.Fatalf("breakpoints = %+v", bp)
	}
}

func TestRailTrimBefore(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "cpu", 1)
	for i := 1; i <= 10; i++ {
		w := float64(i)
		e.At(sim.Time(i*10), func(sim.Time) { r.Set(w) })
	}
	e.Run(200)
	r.TrimBefore(55)
	if r.PowerAt(55) != 5 || r.PowerAt(60) != 6 || r.Power() != 10 {
		t.Fatal("TrimBefore lost data")
	}
	if got := r.EnergyBetween(55, 65); !almost(got, (5*5+6*5)/1e9) {
		t.Fatalf("post-trim energy = %v", got)
	}
}

func TestRailFuturePanics(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "cpu", 1)
	e.Run(10)
	for _, f := range []func(){
		func() { r.PowerAt(11) },
		func() { _ = r.EnergyBetween(0, 11) },
		func() { r.Set(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: for any sequence of transitions, integrating the whole interval
// equals the sum of integrals over an arbitrary split point.
func TestQuickRailEnergyAdditivity(t *testing.T) {
	f := func(raw []uint16, splitRaw uint16) bool {
		e := sim.NewEngine()
		r := NewRail(e, "q", 0.5)
		horizon := sim.Time(1_000_000)
		for i, v := range raw {
			at := sim.Time(int64(v) % int64(horizon))
			w := float64(i%5) * 0.25
			e.At(at, func(sim.Time) { r.Set(w) })
		}
		e.Run(horizon)
		split := sim.Time(int64(splitRaw) % int64(horizon))
		whole := r.EnergyBetween(0, horizon)
		parts := r.EnergyBetween(0, split) + r.EnergyBetween(split, horizon)
		return math.Abs(whole-parts) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: sampled average power converges on exact energy for constant-rate
// sampling of piecewise-constant signals when transitions align to ticks.
func TestQuickRailSamplesMatchEnergyOnAligned(t *testing.T) {
	f := func(raw []uint8) bool {
		e := sim.NewEngine()
		r := NewRail(e, "q", 1)
		period := 10 * sim.Microsecond
		horizon := sim.Time(1000 * int64(period))
		for i, v := range raw {
			tick := int64(v) % 1000
			at := sim.Time(tick * int64(period))
			w := float64((i % 4) + 1)
			e.At(at, func(sim.Time) { r.Set(w) })
		}
		e.Run(horizon)
		samples := r.SamplesBetween(0, horizon, period, nil)
		var sum float64
		for _, s := range samples {
			sum += s.W * period.Seconds()
		}
		return math.Abs(sum-r.EnergyBetween(0, horizon)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOnChangeFiresOnEffectiveChanges(t *testing.T) {
	e := sim.NewEngine()
	r := NewRail(e, "x", 1)
	var seen []float64
	r.OnChange(func(w Watts) { seen = append(seen, w) })
	e.At(1, func(sim.Time) {
		r.Set(1) // coalesced: no event
		r.Set(2)
	})
	e.At(2, func(sim.Time) { r.Set(3) })
	e.Run(5)
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 3 {
		t.Fatalf("events = %v", seen)
	}
}

func TestSumRailTracksInputs(t *testing.T) {
	e := sim.NewEngine()
	a := NewRail(e, "a", 1.0)
	b := NewRail(e, "b", 0.5)
	bat := SumRail(e, "battery", a, b)
	if bat.Power() != 1.5 {
		t.Fatalf("initial sum = %v", bat.Power())
	}
	e.At(sim.Time(10*sim.Millisecond), func(sim.Time) { a.Set(2.0) })
	e.At(sim.Time(20*sim.Millisecond), func(sim.Time) { b.Set(0.0) })
	e.Run(sim.Time(30 * sim.Millisecond))
	if bat.Power() != 2.0 {
		t.Fatalf("final sum = %v", bat.Power())
	}
	// Exact integral: 1.5×10ms + 2.5×10ms + 2.0×10ms.
	want := (1.5 + 2.5 + 2.0) * 0.010
	if got := bat.EnergyBetween(0, e.Now()); !almost(got, want) {
		t.Fatalf("sum energy = %v want %v", got, want)
	}
	// And it equals the inputs' combined energy at all times.
	comb := a.EnergyBetween(0, e.Now()) + b.EnergyBetween(0, e.Now())
	if !almost(bat.EnergyBetween(0, e.Now()), comb) {
		t.Fatal("sum rail diverged from inputs")
	}
}
