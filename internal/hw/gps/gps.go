// Package gps models a GPS receiver, the paper's §7(2) extension case.
//
// GPS has exactly one expensive off/suspended→operating transition (a cold
// start that must re-lock satellites) and an operating state whose power is
// unaffected by how many apps consume fixes. Per §4.1, psbox therefore must
// NOT virtualize or reveal the off/suspended state — doing so would either
// cost a cold restart per sandbox or leak other apps' GPS usage through a
// power side channel. While the device is off, sandboxes are fed idle power.
package gps

import (
	"fmt"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// State is the receiver's coarse power state.
type State int

const (
	// StateOff: powered down; no satellite lock retained.
	StateOff State = iota
	// StateAcquiring: cold start in progress (high power, no fixes yet).
	StateAcquiring
	// StateOperating: locked; fixes delivered; power independent of the
	// number of consuming apps.
	StateOperating
)

func (s State) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateAcquiring:
		return "acquiring"
	case StateOperating:
		return "operating"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config describes the receiver.
type Config struct {
	Name string

	OffW       power.Watts
	AcquireW   power.Watts
	OperatingW power.Watts

	// ColdStartTTFF is the time to first fix from a cold start.
	ColdStartTTFF sim.Duration
}

// DefaultConfig models a typical embedded GNSS module.
func DefaultConfig() Config {
	return Config{
		Name:          "gps",
		OffW:          0.001,
		AcquireW:      0.140,
		OperatingW:    0.065,
		ColdStartTTFF: 28 * sim.Second,
	}
}

func (c Config) validate() error {
	if c.ColdStartTTFF <= 0 {
		return fmt.Errorf("gps %q: ColdStartTTFF must be positive", c.Name)
	}
	if c.OffW < 0 || c.AcquireW < 0 || c.OperatingW < 0 {
		return fmt.Errorf("gps %q: negative power", c.Name)
	}
	return nil
}

// GPS is a simulated receiver with reference-counted users: it powers off
// only when the last user releases it, exactly the device-usage pattern
// whose off/on transitions a power side channel could observe.
type GPS struct {
	eng *sim.Engine
	//psbox:allow-snapshotstate construction-time config; identical by scenario reconstruction under the replay-twin contract
	cfg     Config
	rail    *power.Rail
	state   State
	holders map[int]int // owner → acquire count
	users   int
	lock    sim.Handle

	// ownerRails carry each app's *observable* power view per the §7
	// rule: operating power is revealed, off/suspended and others'
	// acquisitions are hidden behind the off power.
	ownerRails map[int]*power.Rail
}

// New builds a powered-off receiver.
func New(eng *sim.Engine, cfg Config) (*GPS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &GPS{
		eng:        eng,
		cfg:        cfg,
		state:      StateOff,
		holders:    make(map[int]int),
		ownerRails: make(map[int]*power.Rail),
	}
	g.rail = power.NewRail(eng, cfg.Name, cfg.OffW)
	return g, nil
}

// MustNew is New for statically valid configurations.
func MustNew(eng *sim.Engine, cfg Config) *GPS {
	g, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Rail exposes the receiver's metering scope.
func (g *GPS) Rail() *power.Rail { return g.rail }

// Config returns the configuration the receiver was built with.
func (g *GPS) Config() Config { return g.cfg }

// State reports the current coarse power state.
func (g *GPS) State() State { return g.state }

// Users reports how many apps hold the receiver open.
func (g *GPS) Users() int { return g.users }

// IdlePower is what sandboxes are fed while the device is off/suspended —
// the off power, which reveals nothing about other apps' usage.
func (g *GPS) IdlePower() power.Watts { return g.cfg.OffW }

// Acquire registers a user on behalf of an app. The first user triggers a
// cold start.
func (g *GPS) Acquire(owner int) {
	g.users++
	g.holders[owner]++
	if g.users == 1 && g.state == StateOff {
		g.setState(StateAcquiring)
		g.lock = g.eng.After(g.cfg.ColdStartTTFF, func(sim.Time) {
			g.lock = sim.Handle{}
			g.setState(StateOperating)
		})
	}
	g.refreshOwnerRails()
}

// Release drops an app's user. The last release powers the device off and
// loses the satellite lock.
func (g *GPS) Release(owner int) {
	if g.users == 0 || g.holders[owner] == 0 {
		panic(fmt.Sprintf("gps %s: release without acquire (owner %d)", g.cfg.Name, owner))
	}
	g.users--
	g.holders[owner]--
	if g.holders[owner] == 0 {
		delete(g.holders, owner)
	}
	if g.users == 0 {
		if g.lock != (sim.Handle{}) {
			g.eng.Cancel(g.lock)
			g.lock = sim.Handle{}
		}
		g.setState(StateOff)
	}
	g.refreshOwnerRails()
}

// Holds reports whether an app currently holds the receiver.
func (g *GPS) Holds(owner int) bool { return g.holders[owner] > 0 }

// OwnerRail returns (creating on demand) an app's observable-power rail:
// what a psbox bound to the GPS reveals to that app.
func (g *GPS) OwnerRail(owner int) *power.Rail {
	r, ok := g.ownerRails[owner]
	if !ok {
		r = power.NewRail(g.eng, fmt.Sprintf("%s-app%d", g.cfg.Name, owner), g.ObservablePower(g.Holds(owner)))
		g.ownerRails[owner] = r
	}
	return r
}

func (g *GPS) setState(s State) {
	g.state = s
	switch s {
	case StateOff:
		g.rail.Set(g.cfg.OffW)
	case StateAcquiring:
		g.rail.Set(g.cfg.AcquireW)
	case StateOperating:
		g.rail.Set(g.cfg.OperatingW)
	}
	g.refreshOwnerRails()
}

func (g *GPS) refreshOwnerRails() {
	for owner, r := range g.ownerRails {
		r.Set(g.ObservablePower(g.Holds(owner)))
	}
}

// ObservablePower reports what a psbox bound to the GPS may observe right
// now (§7): the true power while operating — concurrency does not entangle
// it — but only the off-state idle power during off/suspended and
// acquisition phases, which would otherwise leak other apps' usage.
func (g *GPS) ObservablePower(ownerHoldsDevice bool) power.Watts {
	switch g.state {
	case StateOperating:
		return g.cfg.OperatingW
	case StateAcquiring:
		if ownerHoldsDevice {
			return g.cfg.AcquireW
		}
		return g.cfg.OffW
	default:
		return g.cfg.OffW
	}
}
