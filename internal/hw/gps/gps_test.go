package gps

import (
	"testing"

	"psbox/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	bad := []Config{
		{Name: "a", ColdStartTTFF: 0},
		{Name: "b", ColdStartTTFF: 1, OffW: -1},
	}
	for _, cfg := range bad {
		if _, err := New(e, cfg); err == nil {
			t.Errorf("config %q should fail", cfg.Name)
		}
	}
	if _, err := New(e, DefaultConfig()); err != nil {
		t.Fatal("default config invalid")
	}
}

func TestColdStartLifecycle(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	g := MustNew(e, cfg)
	if g.State() != StateOff || g.Rail().Power() != cfg.OffW {
		t.Fatal("should start off")
	}
	g.Acquire(1)
	if g.State() != StateAcquiring || g.Rail().Power() != cfg.AcquireW {
		t.Fatal("first acquire should cold-start")
	}
	e.RunFor(cfg.ColdStartTTFF)
	if g.State() != StateOperating || g.Rail().Power() != cfg.OperatingW {
		t.Fatal("should be operating after TTFF")
	}
}

func TestConcurrentUsersDoNotChangePower(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	g := MustNew(e, cfg)
	g.Acquire(1)
	e.RunFor(cfg.ColdStartTTFF)
	p1 := g.Rail().Power()
	g.Acquire(1)
	g.Acquire(1)
	if g.Rail().Power() != p1 {
		t.Fatal("operating power must be concurrency-independent")
	}
	g.Release(1)
	g.Release(1)
	if g.State() != StateOperating {
		t.Fatal("lock should persist while users remain")
	}
	g.Release(1)
	if g.State() != StateOff {
		t.Fatal("last release should power off")
	}
}

func TestReleaseDuringAcquisitionCancelsLock(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	g := MustNew(e, cfg)
	g.Acquire(1)
	e.RunFor(cfg.ColdStartTTFF / 2)
	g.Release(1)
	if g.State() != StateOff {
		t.Fatal("release mid-acquisition should power off")
	}
	e.RunFor(cfg.ColdStartTTFF)
	if g.State() != StateOff {
		t.Fatal("cancelled lock event fired anyway")
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	e := sim.NewEngine()
	g := MustNew(e, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Release(1)
}

// §7's security rationale: an observer that does not hold the device must
// not be able to distinguish "off" from "another app is acquiring".
func TestObservablePowerHidesOffSuspended(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	g := MustNew(e, cfg)
	offView := g.ObservablePower(false)
	g.Acquire(1) // some *other* app acquires
	if g.ObservablePower(false) != offView {
		t.Fatal("acquisition by others must be invisible")
	}
	if g.ObservablePower(true) != cfg.AcquireW {
		t.Fatal("the acquiring app itself sees acquisition power")
	}
	e.RunFor(cfg.ColdStartTTFF)
	// Operating power is safe to reveal to everyone.
	if g.ObservablePower(false) != cfg.OperatingW {
		t.Fatal("operating power should be revealed")
	}
}

func TestStateString(t *testing.T) {
	if StateOff.String() != "off" || StateAcquiring.String() != "acquiring" ||
		StateOperating.String() != "operating" || State(7).String() != "state(7)" {
		t.Fatal("state strings wrong")
	}
}
