package gps

import (
	"sort"

	"psbox/internal/snapshot"
)

// Snapshot encodes the receiver: acquisition state machine, the holders'
// acquire counts (sorted by owner), the armed lock timer, the rail
// history, and every per-app observable rail.
func (g *GPS) Snapshot(enc *snapshot.Encoder) {
	enc.U8(uint8(g.state))
	enc.I64(int64(g.users))
	enc.U64(g.lock.Seq())
	owners := make([]int, 0, len(g.holders))
	for o := range g.holders {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	enc.Len(len(owners))
	for _, o := range owners {
		enc.I64(int64(o))
		enc.I64(int64(g.holders[o]))
	}
	g.rail.Snapshot(enc)
	railOwners := make([]int, 0, len(g.ownerRails))
	for o := range g.ownerRails {
		railOwners = append(railOwners, o)
	}
	sort.Ints(railOwners)
	enc.Len(len(railOwners))
	for _, o := range railOwners {
		enc.I64(int64(o))
		g.ownerRails[o].Snapshot(enc)
	}
}

// Restore verifies the live receiver against a checkpoint section.
func (g *GPS) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, g.Snapshot) }
