package sidechannel

import (
	"testing"

	"psbox/internal/sim"
)

func TestSitesDeterministicAndDistinct(t *testing.T) {
	a := Sites(10, 42)
	b := Sites(10, 42)
	if len(a) != 10 {
		t.Fatalf("sites = %d", len(a))
	}
	for i := range a {
		if len(a[i].segments) != len(b[i].segments) {
			t.Fatal("same seed must give identical sites")
		}
		for j := range a[i].segments {
			if a[i].segments[j] != b[i].segments[j] {
				t.Fatal("same seed must give identical segments")
			}
		}
	}
	// Different sites must differ (signature distinctness).
	same := 0
	for i := 1; i < len(a); i++ {
		if len(a[i].segments) == len(a[0].segments) {
			same++
		}
	}
	if same == len(a)-1 {
		t.Fatal("suspiciously uniform site lengths")
	}
}

func TestObservationString(t *testing.T) {
	if ObserveUnrestricted.String() != "unrestricted" || ObservePSBox.String() != "psbox" {
		t.Fatal("strings wrong")
	}
}

// The §2.5 headline: with unrestricted power observation the attacker
// beats random guessing by a wide margin; behind psbox it collapses to
// ≈random. Small configuration to keep the test fast; the full experiment
// runs via the bench harness.
func TestAttackSucceedsUnrestrictedFailsUnderPSBox(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{
		Sites:   6,
		Trials:  2,
		Seed:    99,
		Span:    1200 * sim.Millisecond,
		Bucket:  10 * sim.Millisecond,
		Window:  25,
		Observe: ObserveUnrestricted,
	}
	open := Run(cfg)
	cfg.Observe = ObservePSBox
	closed := Run(cfg)

	if open.Total != 12 || closed.Total != 12 {
		t.Fatalf("totals: %d %d", open.Total, closed.Total)
	}
	if open.SuccessRate < 3*open.RandomGuess {
		t.Fatalf("unrestricted attack too weak: %.2f (random %.2f)", open.SuccessRate, open.RandomGuess)
	}
	if closed.SuccessRate > open.SuccessRate/2 {
		t.Fatalf("psbox did not suppress the channel: %.2f vs %.2f", closed.SuccessRate, open.SuccessRate)
	}
}

func TestLeakageBits(t *testing.T) {
	// A perfect 4-site classifier leaks log2(4) = 2 bits.
	perfect := Result{Total: 8, Confusion: [][]int{
		{2, 0, 0, 0}, {0, 2, 0, 0}, {0, 0, 2, 0}, {0, 0, 0, 2},
	}}
	if got := perfect.LeakageBits(); got < 1.999 || got > 2.001 {
		t.Fatalf("perfect leakage = %v bits", got)
	}
	if perfect.MaxLeakageBits() != 2 {
		t.Fatalf("max = %v", perfect.MaxLeakageBits())
	}
	// A constant guesser leaks nothing.
	blind := Result{Total: 8, Confusion: [][]int{
		{2, 0, 0, 0}, {2, 0, 0, 0}, {2, 0, 0, 0}, {2, 0, 0, 0},
	}}
	if got := blind.LeakageBits(); got > 1e-9 {
		t.Fatalf("blind leakage = %v bits", got)
	}
	// Empty result is safe.
	if (Result{}).LeakageBits() != 0 || (Result{}).MaxLeakageBits() != 0 {
		t.Fatal("empty result leakage")
	}
}

func TestLeakageOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{
		Sites: 5, Trials: 2, Seed: 31,
		Span: 900 * sim.Millisecond, Bucket: 10 * sim.Millisecond,
		Window: 20, Observe: ObserveUnrestricted,
	}
	open := Run(cfg)
	cfg.Observe = ObservePSBox
	closed := Run(cfg)
	if open.LeakageBits() <= closed.LeakageBits() {
		t.Fatalf("unrestricted leakage %v bits should exceed psbox %v bits",
			open.LeakageBits(), closed.LeakageBits())
	}
	if open.LeakageBits() < 0.5 {
		t.Fatalf("unrestricted channel too weak: %v bits", open.LeakageBits())
	}
}

func TestConfusionMatrixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{
		Sites: 3, Trials: 1, Seed: 5,
		Span: 600 * sim.Millisecond, Bucket: 10 * sim.Millisecond,
		Window: 20, Observe: ObserveUnrestricted,
	}
	r := Run(cfg)
	if len(r.Confusion) != 3 {
		t.Fatal("confusion rows")
	}
	total := 0
	for _, row := range r.Confusion {
		for _, v := range row {
			total += v
		}
	}
	if total != r.Total {
		t.Fatalf("confusion sums to %d, total %d", total, r.Total)
	}
}
