// Package sidechannel reproduces the paper's §2.5 attack: a victim browser
// renders one of ten synthetic websites, each with a characteristic GPU
// command train and hence a unique power signature; an attacker app runs a
// light camouflage workload and classifies what it can observe of GPU
// power with DTW against training traces of the victim running alone.
//
// Two observation regimes are compared:
//
//   - ObserveUnrestricted — the state of the art (§2): power readings are
//     an unprotected system service (a /sys current sensor), so the
//     attacker sees the shared GPU rail with the victim's activity
//     entangled into it;
//   - ObservePSBox — psbox is the only way to observe power: the attacker
//     reads its own sandbox's virtual meter, in which the victim can
//     contribute at most idle power.
package sidechannel

import (
	"fmt"
	"math"

	psbox "psbox"
	"psbox/internal/dtw"
	"psbox/internal/kernel"
	"psbox/internal/sim"
)

// Observation selects what the attacker can read.
type Observation int

const (
	// ObserveUnrestricted reads the raw shared GPU rail.
	ObserveUnrestricted Observation = iota
	// ObservePSBox reads the attacker's own power sandbox.
	ObservePSBox
)

func (o Observation) String() string {
	if o == ObservePSBox {
		return "psbox"
	}
	return "unrestricted"
}

// segment is one burst of a page's rendering pipeline.
type segment struct {
	kind string
	work float64
	dynW float64
	gap  sim.Duration
}

// Site is one synthetic website: a fixed rendering command train.
type Site struct {
	ID       int
	Name     string
	segments []segment
}

// Sites derives n deterministic, mutually distinct websites from a seed.
func Sites(n int, seed uint64) []Site {
	r := sim.NewRand(seed ^ 0xabcdef12345)
	kinds := []struct {
		name string
		dynW float64
	}{
		{"image", 0.62}, {"script", 0.48}, {"layout", 0.41},
		{"video", 0.78}, {"canvas", 0.70},
	}
	sites := make([]Site, n)
	for i := range sites {
		segN := 6 + r.Intn(9)
		s := Site{ID: i, Name: fmt.Sprintf("site%02d", i)}
		for j := 0; j < segN; j++ {
			k := kinds[r.Intn(len(kinds))]
			s.segments = append(s.segments, segment{
				kind: k.name,
				work: float64(800 + r.Intn(9000)),
				dynW: k.dynW,
				gap:  sim.Duration(5+r.Intn(90)) * sim.Millisecond,
			})
		}
		sites[i] = s
	}
	return sites
}

// victimProgram plays one page load (with per-run jitter), then idles.
func victimProgram(site Site) kernel.Program {
	idx := 0
	stage := 0
	return kernel.ProgramFunc(func(env *kernel.Env) kernel.Action {
		if idx >= len(site.segments) {
			return kernel.Sleep{D: 10 * sim.Second}
		}
		seg := site.segments[idx]
		switch stage {
		case 0:
			stage = 1
			return kernel.Compute{Cycles: float64(env.Rand.Jitter(3e5, 0.2))}
		case 1:
			stage = 2
			return kernel.SubmitAccel{Dev: "gpu", Kind: seg.kind,
				Work: float64(env.Rand.Jitter(int64(seg.work), 0.08)), DynW: seg.dynW}
		case 2:
			stage = 3
			return kernel.AwaitAccel{Dev: "gpu", MaxBacklog: 0}
		default:
			stage = 0
			idx++
			return kernel.Sleep{D: env.Rand.JitterDur(seg.gap, 0.15)}
		}
	})
}

// attackerProgram is the light camouflage workload: a tiny GPU command
// every ~30 ms.
func attackerProgram() kernel.Program {
	step := 0
	return kernel.ProgramFunc(func(env *kernel.Env) kernel.Action {
		step++
		switch step % 3 {
		case 1:
			return kernel.SubmitAccel{Dev: "gpu", Kind: "camo",
				Work: 300, DynW: 0.30}
		case 2:
			return kernel.AwaitAccel{Dev: "gpu", MaxBacklog: 0}
		default:
			return kernel.Sleep{D: sim.Duration(env.Rand.Jitter(int64(30*sim.Millisecond), 0.2))}
		}
	})
}

// Config tunes the experiment.
type Config struct {
	Sites   int
	Trials  int // co-run trials per site
	Seed    uint64
	Span    sim.Duration // observation length per trial
	Bucket  sim.Duration // trace bucket width
	Window  int          // DTW band half-width in buckets
	Observe Observation
}

// DefaultConfig mirrors §2.5: Alexa top-10, repeated runs.
func DefaultConfig(obs Observation) Config {
	return Config{
		Sites:   10,
		Trials:  3,
		Seed:    1234,
		Span:    1500 * sim.Millisecond,
		Bucket:  5 * sim.Millisecond,
		Window:  30,
		Observe: obs,
	}
}

// Result summarizes the attack's accuracy.
type Result struct {
	Observe     Observation
	Correct     int
	Total       int
	SuccessRate float64
	RandomGuess float64
	Confusion   [][]int // [actual][predicted]
}

// LeakageBits estimates the empirical mutual information I(site; guess)
// of the confusion matrix, in bits — a channel-capacity-style measure of
// how much the observation leaks about the victim's website. A perfect
// classifier over n sites leaks log2(n) bits; an insulated observation
// leaks ≈0.
func (r Result) LeakageBits() float64 {
	n := len(r.Confusion)
	if n == 0 || r.Total == 0 {
		return 0
	}
	total := float64(r.Total)
	rowSum := make([]float64, n)
	colSum := make([]float64, n)
	for i, row := range r.Confusion {
		for j, v := range row {
			rowSum[i] += float64(v)
			colSum[j] += float64(v)
		}
	}
	var mi float64
	for i, row := range r.Confusion {
		for j, v := range row {
			if v == 0 {
				continue
			}
			pxy := float64(v) / total
			px := rowSum[i] / total
			py := colSum[j] / total
			mi += pxy * math.Log2(pxy/(px*py))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// MaxLeakageBits is the leakage of a perfect classifier: log2(sites).
func (r Result) MaxLeakageBits() float64 {
	if len(r.Confusion) == 0 {
		return 0
	}
	return math.Log2(float64(len(r.Confusion)))
}

// Run executes the full attack: train on solo victim traces, then attack
// co-running trials.
func Run(cfg Config) Result {
	sites := Sites(cfg.Sites, cfg.Seed)
	buckets := int(cfg.Span / cfg.Bucket)

	// Training: the victim runs alone; the attacker records the GPU rail
	// (training happens in the unrestricted world in both regimes — the
	// attacker trains offline on its own device).
	training := make([][]float64, len(sites))
	for i, site := range sites {
		sys := psbox.NewAM57(cfg.Seed + uint64(i)*977)
		victim := sys.Kernel.NewApp("victim")
		victim.Spawn("render", 0, victimProgram(site))
		sys.Run(cfg.Span)
		training[i] = bucketize(sys, 0, cfg.Span, cfg.Bucket, func(a, b sim.Time) float64 {
			return sys.Meter.Energy("gpu", a, b)
		})
	}

	res := Result{
		Observe:     cfg.Observe,
		RandomGuess: 1 / float64(len(sites)),
		Confusion:   make([][]int, len(sites)),
	}
	for i := range res.Confusion {
		res.Confusion[i] = make([]int, len(sites))
	}

	for trial := 0; trial < cfg.Trials; trial++ {
		for i, site := range sites {
			seed := cfg.Seed + uint64(trial)*131071 + uint64(i)*8191 + 7
			sys := psbox.NewAM57(seed)
			victim := sys.Kernel.NewApp("victim")
			victim.Spawn("render", 0, victimProgram(site))
			attacker := sys.Kernel.NewApp("attacker")
			attacker.Spawn("camo", 1, attackerProgram())

			var probe []float64
			switch cfg.Observe {
			case ObservePSBox:
				box := sys.Sandbox.MustCreate(attacker, psbox.HWGPU)
				box.Enter()
				sys.Run(cfg.Span)
				probe = bucketize(sys, 0, cfg.Span, cfg.Bucket, func(a, b sim.Time) float64 {
					return energyOfSamples(box.SamplesBetween(psbox.HWGPU, a, b), sys.Meter.Period())
				})
			default:
				sys.Run(cfg.Span)
				probe = bucketize(sys, 0, cfg.Span, cfg.Bucket, func(a, b sim.Time) float64 {
					return sys.Meter.Energy("gpu", a, b)
				})
			}
			if len(probe) != buckets {
				panic("sidechannel: bucket mismatch")
			}
			guess, _ := dtw.Classify(probe, training, cfg.Window)
			res.Confusion[i][guess]++
			if guess == i {
				res.Correct++
			}
			res.Total++
		}
	}
	res.SuccessRate = float64(res.Correct) / float64(res.Total)
	return res
}

func bucketize(sys *psbox.System, from, span sim.Duration, bucket sim.Duration,
	energy func(a, b sim.Time) float64) []float64 {
	n := int(span / bucket)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		a := sim.Time(from + sim.Duration(i)*bucket)
		b := a.Add(bucket)
		out[i] = energy(a, b) / bucket.Seconds() // average watts
	}
	return out
}

func energyOfSamples(samples []psbox.Sample, period sim.Duration) float64 {
	var e float64
	for _, s := range samples {
		e += s.W * period.Seconds()
	}
	return e
}
