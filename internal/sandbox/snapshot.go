package sandbox

import (
	"sort"

	"psbox/internal/snapshot"
)

func (s *Session) snapshot(enc *snapshot.Encoder) {
	enc.Str(s.spec.Name)
	enc.F64(s.spec.BudgetW)
	enc.Len(len(s.spec.Scopes))
	for _, h := range s.spec.Scopes {
		enc.Str(string(h))
	}
	enc.I64(int64(s.spec.MaxBacklog))
	enc.Bool(s.spec.PreserveData)
	enc.U8(uint8(s.state))
	if s.app == nil {
		enc.I64(-1)
	} else {
		enc.I64(int64(s.app.ID))
	}
	enc.Bool(s.box != nil)
	enc.I64(int64(s.violations))
	enc.Bool(s.throttled)
	keys := make([]string, 0, len(s.preserved))
	for k := range s.preserved {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.Len(len(keys))
	for _, k := range keys {
		enc.Str(k)
		enc.F64(s.preserved[k])
	}
	enc.Len(len(s.failures))
	for _, at := range s.failures {
		enc.I64(int64(at))
	}
	enc.U64(s.restartArm.Seq())
	enc.U64(s.gateArm.Seq())
	enc.I64(int64(s.spanStart))
	enc.U64(s.throttles)
	enc.U64(s.kills)
	enc.U64(s.restarts)
	enc.F64(s.peakJ)
}

// Snapshot encodes the manager: the enforcement config, the aggregate
// stats, and every session in admission order.
func (m *Manager) Snapshot(enc *snapshot.Encoder) {
	enc.F64(m.cfg.CapacityW)
	enc.I64(int64(m.cfg.Window))
	enc.I64(int64(m.cfg.ThrottleAfter))
	enc.I64(int64(m.cfg.KillAfter))
	enc.F64(m.cfg.ThrottleDuty)
	enc.I64(int64(m.cfg.BackoffBase))
	enc.I64(int64(m.cfg.BackoffCap))
	enc.I64(int64(m.cfg.BreakerN))
	enc.I64(int64(m.cfg.BreakerWindow))
	enc.Bool(m.started)
	enc.F64(m.reserved)
	enc.I64(int64(m.lastWindow))
	enc.U64(m.monitorArm.Seq())
	enc.U64(m.stats.Admitted)
	enc.U64(m.stats.Rejected)
	enc.U64(m.stats.Throttles)
	enc.U64(m.stats.Kills)
	enc.U64(m.stats.Restarts)
	enc.U64(m.stats.Quarantined)
	enc.U64(m.stats.Retired)
	enc.F64(m.stats.ReclaimedJ)
	enc.Len(len(m.sessions))
	for _, s := range m.sessions {
		s.snapshot(enc)
	}
}

// Restore verifies the live manager against a checkpoint section.
func (m *Manager) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, m.Snapshot) }
