package sandbox_test

import (
	"bytes"
	"errors"
	"testing"

	"psbox"
	"psbox/internal/sandbox"
)

// hogSpec is a budget hog: spins the CPU but declares a tiny budget.
func hogSpec(name string) sandbox.Spec {
	return sandbox.Spec{
		Name:    name,
		BudgetW: 0.3,
		Start: func(app *psbox.App) {
			app.Spawn("spin", 0, psbox.Loop(psbox.Compute{Cycles: 5e5}))
		},
	}
}

// steadySpec is a well-behaved periodic workload with ample budget.
func steadySpec(name string) sandbox.Spec {
	return sandbox.Spec{
		Name:    name,
		BudgetW: 2.0,
		Start: func(app *psbox.App) {
			app.Spawn("work", 0, psbox.Loop(
				psbox.Compute{Cycles: 3e5},
				psbox.Sleep{D: 9 * psbox.Millisecond},
			))
		},
	}
}

func TestAdmissionControl(t *testing.T) {
	sys := psbox.NewAM57(1)
	mgr := sys.Sandboxes()
	mgr.SetConfig(sandbox.DefaultConfig(3))

	if _, err := mgr.Launch(steadySpec("a")); err != nil {
		t.Fatalf("launch a: %v", err)
	}
	if got := mgr.Headroom(); got != 1.0 {
		t.Fatalf("headroom = %v, want 1.0", got)
	}
	_, err := mgr.Launch(steadySpec("b")) // needs 2 W, only 1 W left
	var adm *sandbox.AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("over-capacity launch error = %v, want *AdmissionError", err)
	}
	if adm.Name != "b" || adm.Headroom != 1.0 {
		t.Fatalf("admission error = %+v", adm)
	}
	// Duplicate live name is rejected too.
	if _, err := mgr.Launch(sandbox.Spec{Name: "a", BudgetW: 0.1,
		Start: func(*psbox.App) {}}); err == nil {
		t.Fatal("duplicate live name admitted")
	}
	if st := mgr.Stats(); st.Admitted != 1 || st.Rejected != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHogThrottledThenKilledThenRestarted(t *testing.T) {
	sys := psbox.NewAM57(2)
	mgr := sys.Sandboxes()
	mgr.SetConfig(sandbox.DefaultConfig(6))

	hog, err := mgr.Launch(hogSpec("hog"))
	if err != nil {
		t.Fatal(err)
	}
	steady, err := mgr.Launch(steadySpec("steady"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2 * psbox.Second)

	if hog.Throttles() == 0 {
		t.Fatal("hog never throttled")
	}
	if hog.Kills() == 0 {
		t.Fatal("hog never killed")
	}
	if hog.Restarts() == 0 {
		t.Fatal("hog never restarted")
	}
	if steady.Throttles() != 0 || steady.Kills() != 0 {
		t.Fatalf("steady session punished: %d throttles %d kills",
			steady.Throttles(), steady.Kills())
	}
	if st := mgr.Stats(); st.ReclaimedJ <= 0 {
		t.Fatalf("no energy reclaimed from throttling: %+v", st)
	}
}

func TestCrashLoopQuarantinedByBreaker(t *testing.T) {
	sys := psbox.NewAM57(3)
	mgr := sys.Sandboxes()
	mgr.SetConfig(sandbox.DefaultConfig(6))

	s, err := mgr.Launch(steadySpec("crashy"))
	if err != nil {
		t.Fatal(err)
	}
	// Three crashes inside the 500 ms breaker window. Restarts happen with
	// 10/20 ms backoff, so each subsequent crash finds a live session.
	sys.Faults.CrashSessionAt(psbox.Time(50*psbox.Millisecond), "crashy")
	sys.Faults.CrashSessionAt(psbox.Time(150*psbox.Millisecond), "crashy")
	sys.Faults.CrashSessionAt(psbox.Time(250*psbox.Millisecond), "crashy")
	sys.Run(1 * psbox.Second)

	if s.State() != sandbox.StateQuarantined {
		t.Fatalf("state = %v, want quarantined", s.State())
	}
	if s.Restarts() != 2 {
		t.Fatalf("restarts = %d, want 2 (third failure trips the breaker)", s.Restarts())
	}
	if got := mgr.Headroom(); got != 6.0 {
		t.Fatalf("headroom = %v, want full capacity released", got)
	}
	if len(sys.Faults.Log()) != 3 {
		t.Fatalf("fault log has %d events, want 3", len(sys.Faults.Log()))
	}
}

func TestSlowCrashesStayBelowBreaker(t *testing.T) {
	sys := psbox.NewAM57(4)
	mgr := sys.Sandboxes()
	mgr.SetConfig(sandbox.DefaultConfig(6))

	s, err := mgr.Launch(steadySpec("flaky"))
	if err != nil {
		t.Fatal(err)
	}
	// Crashes 700 ms apart: each falls outside the 500 ms breaker window
	// of its predecessor, so the session keeps getting restarted.
	sys.Faults.CrashSessionAt(psbox.Time(100*psbox.Millisecond), "flaky")
	sys.Faults.CrashSessionAt(psbox.Time(800*psbox.Millisecond), "flaky")
	sys.Faults.CrashSessionAt(psbox.Time(1500*psbox.Millisecond), "flaky")
	sys.Run(2 * psbox.Second)

	if s.State() == sandbox.StateQuarantined {
		t.Fatal("breaker tripped on crashes outside its window")
	}
	if s.Restarts() != 3 {
		t.Fatalf("restarts = %d, want 3", s.Restarts())
	}
}

func TestPreserveDataResumesAcrossRestart(t *testing.T) {
	sys := psbox.NewAM57(5)
	mgr := sys.Sandboxes()
	mgr.SetConfig(sandbox.DefaultConfig(6))

	spec := sandbox.Spec{
		Name:         "counter",
		BudgetW:      2.0,
		PreserveData: true,
		Start: func(app *psbox.App) {
			app.Spawn("work", 0, psbox.ProgramFunc(func(env *psbox.Env) psbox.Action {
				env.Count("iters", 1)
				return psbox.Sleep{D: 5 * psbox.Millisecond}
			}))
		},
	}
	s, err := mgr.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(200 * psbox.Millisecond)
	before := s.App().Counter("iters")
	if before < 10 {
		t.Fatalf("only %v iters before crash", before)
	}
	sys.Faults.CrashSessionAt(sys.Now().Add(psbox.Millisecond), "counter")
	sys.Run(100 * psbox.Millisecond)

	if s.Restarts() != 1 {
		t.Fatalf("restarts = %d", s.Restarts())
	}
	after := s.App().Counter("iters")
	if after <= before {
		t.Fatalf("restarted incarnation did not resume: %v iters after, %v before",
			after, before)
	}
	// Without PreserveData the new incarnation replays from zero iters and
	// cannot have passed `before` in 100 ms minus backoff.
	if after > before+25 {
		t.Fatalf("implausible iter count %v (before %v): replay instead of resume?",
			after, before)
	}
}

func TestSessionRetiresOnExit(t *testing.T) {
	sys := psbox.NewAM57(6)
	mgr := sys.Sandboxes()
	mgr.SetConfig(sandbox.DefaultConfig(6))

	s, err := mgr.Launch(sandbox.Spec{
		Name:    "oneshot",
		BudgetW: 1.0,
		Start: func(app *psbox.App) {
			app.Spawn("work", 0, psbox.Sequence(
				psbox.Compute{Cycles: 1e5},
				psbox.Sleep{D: 10 * psbox.Millisecond},
			))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(500 * psbox.Millisecond)
	if s.State() != sandbox.StateRetired {
		t.Fatalf("state = %v, want retired", s.State())
	}
	if got := mgr.Headroom(); got != 6.0 {
		t.Fatalf("headroom = %v, want budget released", got)
	}
	if st := mgr.Stats(); st.Retired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLeakerKilledOnBacklogBound(t *testing.T) {
	sys := psbox.NewAM57(7)
	mgr := sys.Sandboxes()
	mgr.SetConfig(sandbox.DefaultConfig(6))

	s, err := mgr.Launch(sandbox.Spec{
		Name:       "leaker",
		BudgetW:    3.0,
		MaxBacklog: 8,
		Start: func(app *psbox.App) {
			// Submits GPU work far faster than the device completes it and
			// never awaits: the backlog grows without bound.
			app.Spawn("leak", 0, psbox.Loop(
				psbox.SubmitAccel{Dev: "gpu", Kind: "leak", Work: 5e5, DynW: 0.5},
				psbox.Sleep{D: psbox.Millisecond},
			))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2 * psbox.Second)
	if s.Kills() == 0 {
		t.Fatal("leaker never killed")
	}
}

// TestSnapshotDeterminism: two identically-driven systems produce
// byte-identical checkpoints including the sandbox section.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *psbox.System {
		sys := psbox.NewAM57(8)
		mgr := sys.Sandboxes()
		mgr.SetConfig(sandbox.DefaultConfig(6))
		if _, err := mgr.Launch(hogSpec("hog")); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Launch(steadySpec("steady")); err != nil {
			t.Fatal(err)
		}
		sys.Faults.CrashSessionAt(psbox.Time(300*psbox.Millisecond), "steady")
		return sys
	}
	a, b := build(), build()
	a.Run(1 * psbox.Second)
	b.Run(1 * psbox.Second)
	ca, cb := a.Snapshot(), b.Snapshot()
	if !bytes.Equal(ca, cb) {
		t.Fatalf("twin checkpoints differ: %d vs %d bytes", len(ca), len(cb))
	}
	if err := a.Restore(cb); err != nil {
		t.Fatalf("restore-verify: %v", err)
	}
}

// TestThrottleConfinesPower: over a long horizon the throttled hog's
// attributed energy stays well below its unthrottled appetite.
func TestThrottleConfinesPower(t *testing.T) {
	run := func(throttling bool) float64 {
		sys := psbox.NewAM57(9)
		mgr := sys.Sandboxes()
		cfg := sandbox.DefaultConfig(6)
		if !throttling {
			// Ladder too long to ever fire within the horizon.
			cfg.ThrottleAfter = 1 << 30
		}
		cfg.KillAfter = 1 << 30 // isolate throttling from killing
		mgr.SetConfig(cfg)
		s, err := mgr.Launch(hogSpec("hog"))
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(1 * psbox.Second)
		return float64(s.App().CPUTime())
	}
	throttled, free := run(true), run(false)
	if throttled > free*0.5 {
		t.Fatalf("throttling barely bit: %v vs %v CPU ns", throttled, free)
	}
}
