// Package sandbox is the runtime sandbox manager: it turns workloads into
// supervised *sessions*, each admitted against a declared power budget and
// driven through the lifecycle Admit → Run → Throttle → Kill → Restart →
// Retire. Enforcement is graduated and entirely sim-deterministic:
//
//   - Admission control rejects a session whose declared budget exceeds
//     the remaining headroom of the device's power capacity.
//   - A budget monitor, fed by the internal/account blame shares of the
//     metered rails, throttles an app that stays over budget (duty-cycling
//     its CPU via the scheduler's throttle gates) and kills it after K
//     further violation windows.
//   - A supervisor restarts crashed or killed sessions with capped
//     exponential backoff; a circuit breaker quarantines a session that
//     fails N times within a window. Restarted incarnations are seeded
//     with the preserve_data counters of their predecessor, so they resume
//     rather than replay.
//
// Everything the manager does rides the simulation engine: one seed, one
// schedule of admissions, violations, kills, and restarts.
package sandbox

import (
	"fmt"
	"sort"

	"psbox/internal/account"
	"psbox/internal/core"
	"psbox/internal/hw/power"
	"psbox/internal/kernel"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// Config tunes the manager's enforcement ladder. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// CapacityW is the device's admittable power: the sum of live
	// sessions' declared budgets never exceeds it.
	CapacityW power.Watts

	// Window is the budget monitor period: blame shares are evaluated
	// (and throttle duty cycles paced) once per window.
	Window sim.Duration

	// ThrottleAfter is how many consecutive over-budget windows a running
	// session survives before it is throttled.
	ThrottleAfter int

	// KillAfter is how many consecutive violation windows a *throttled*
	// session survives before it is killed. While throttled the session
	// is held against its duty-scaled budget, so a genuine hog keeps
	// violating and climbs the ladder; a reformed app recovers.
	KillAfter int

	// ThrottleDuty is the fraction of each window a throttled session's
	// CPU gate stays open (0 < duty < 1).
	ThrottleDuty float64

	// BackoffBase and BackoffCap bound the supervisor's restart delay:
	// base·2^(failures-1), capped.
	BackoffBase sim.Duration
	BackoffCap  sim.Duration

	// BreakerN failures within BreakerWindow trip the circuit breaker:
	// the session is quarantined instead of restarted, and its budget
	// reservation is released.
	BreakerN      int
	BreakerWindow sim.Duration
}

// DefaultConfig returns the standard enforcement tuning.
func DefaultConfig(capacity power.Watts) Config {
	return Config{
		CapacityW:     capacity,
		Window:        25 * sim.Millisecond,
		ThrottleAfter: 2,
		KillAfter:     3,
		ThrottleDuty:  0.25,
		BackoffBase:   10 * sim.Millisecond,
		BackoffCap:    160 * sim.Millisecond,
		BreakerN:      3,
		BreakerWindow: 500 * sim.Millisecond,
	}
}

// State is a session's lifecycle state.
type State uint8

// The session lifecycle.
const (
	// StateRunning: admitted and executing under budget.
	StateRunning State = iota
	// StateThrottled: over budget; CPU duty-cycled by the monitor.
	StateThrottled
	// StateKilled: terminated by enforcement or a crash; a restart is
	// pending (unless the breaker trips first).
	StateKilled
	// StateQuarantined: the circuit breaker gave up on the session; it
	// holds no budget and will not be restarted.
	StateQuarantined
	// StateRetired: exited on its own; terminal.
	StateRetired
)

func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateThrottled:
		return "throttled"
	case StateKilled:
		return "killed"
	case StateQuarantined:
		return "quarantined"
	case StateRetired:
		return "retired"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Spec declares a session: its identity, budget, sandbox scopes, and how
// to (re)start its program.
type Spec struct {
	// Name identifies the session to the supervisor and the fault layer.
	// Must be unique among non-terminal sessions.
	Name string

	// BudgetW is the declared power budget, reserved at admission and
	// enforced per monitor window.
	BudgetW power.Watts

	// Scopes are the sandbox's hardware scopes; empty defaults to the CPU.
	Scopes []core.HW

	// MaxBacklog, when positive, is the leak bound: a session whose
	// summed accelerator backlog exceeds it is killed as a leaker.
	MaxBacklog int

	// PreserveData carries the app's throughput counters across restarts,
	// heka-style: the next incarnation resumes from them.
	PreserveData bool

	// Start spawns the incarnation's tasks. Called once per (re)start
	// with a freshly registered app.
	Start func(app *kernel.App)
}

// AdmissionError is the typed rejection of Launch.
type AdmissionError struct {
	Name     string
	Budget   power.Watts
	Headroom power.Watts
	Reason   string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("sandbox: session %q rejected: %s (budget %.2f W, headroom %.2f W)",
		e.Name, e.Reason, e.Budget, e.Headroom)
}

// Session is one supervised workload across all its incarnations.
type Session struct {
	//psbox:allow-snapshotstate Start is a program closure; the scalar spec fields are encoded by snapshot()
	spec  Spec
	state State
	app   *kernel.App // current incarnation; nil only before first start
	box   *core.Box   // current incarnation's sandbox

	violations int  // consecutive violation windows
	throttled  bool // CPU gate duty-cycling active

	preserved map[string]float64 // preserve_data carried across restarts
	failures  []sim.Time         // recent kill instants, pruned to BreakerWindow

	restartArm sim.Handle // pending supervisor restart
	gateArm    sim.Handle // pending duty-cycle gate close
	spanStart  sim.Time   // current lifecycle span start

	// Per-session tallies.
	throttles uint64
	kills     uint64
	restarts  uint64

	// peakJ is the last unthrottled violating window's energy — the rate
	// the hog would sustain unthrottled, against which reclaimed energy
	// is measured while the throttle holds it down.
	peakJ power.Joules
}

// Name returns the session's declared name.
func (s *Session) Name() string { return s.spec.Name }

// State returns the lifecycle state.
func (s *Session) State() State { return s.state }

// App returns the current incarnation's app (nil before first start).
func (s *Session) App() *kernel.App { return s.app }

// Box returns the current incarnation's sandbox.
func (s *Session) Box() *core.Box { return s.box }

// Restarts reports how many times the supervisor restarted the session.
func (s *Session) Restarts() uint64 { return s.restarts }

// Kills reports how many times enforcement or crashes killed the session.
func (s *Session) Kills() uint64 { return s.kills }

// Throttles reports how many times the session entered throttling.
func (s *Session) Throttles() uint64 { return s.throttles }

// Preserved returns the preserve_data counters carried for the next
// incarnation (nil when none).
func (s *Session) Preserved() map[string]float64 { return s.preserved }

// Stats is the manager's aggregate enforcement tally — the flood report's
// numbers.
type Stats struct {
	Admitted    uint64
	Rejected    uint64
	Throttles   uint64
	Kills       uint64
	Restarts    uint64
	Quarantined uint64
	Retired     uint64
	ReclaimedJ  power.Joules
}

// Manager supervises all sessions of one system.
type Manager struct {
	eng   *sim.Engine
	k     *kernel.Kernel
	boxes *core.Manager
	//psbox:allow-snapshotstate wiring: blame accountants installed at construction
	accts []*account.Accountant
	bus   *obs.Bus

	cfg      Config
	started  bool // first Launch happened; cfg is frozen
	sessions []*Session
	reserved power.Watts // sum of live sessions' budgets

	lastWindow sim.Time
	monitorArm sim.Handle

	stats Stats
}

// NewManager builds a sandbox manager over a system's kernel, psbox
// service, and blame accountants (one per metered rail, in a fixed order).
func NewManager(eng *sim.Engine, k *kernel.Kernel, boxes *core.Manager, accts []*account.Accountant, bus *obs.Bus, cfg Config) *Manager {
	validate(cfg)
	return &Manager{eng: eng, k: k, boxes: boxes, accts: accts, bus: bus, cfg: cfg}
}

func validate(cfg Config) {
	if cfg.CapacityW <= 0 {
		panic("sandbox: need a positive power capacity")
	}
	if cfg.Window <= 0 {
		panic("sandbox: need a positive monitor window")
	}
	if cfg.ThrottleAfter <= 0 || cfg.KillAfter <= 0 {
		panic("sandbox: need positive ladder thresholds")
	}
	if cfg.ThrottleDuty <= 0 || cfg.ThrottleDuty >= 1 {
		panic("sandbox: throttle duty must be in (0, 1)")
	}
	if cfg.BackoffBase <= 0 || cfg.BackoffCap < cfg.BackoffBase {
		panic("sandbox: need 0 < backoff base ≤ cap")
	}
	if cfg.BreakerN <= 0 || cfg.BreakerWindow <= 0 {
		panic("sandbox: need a positive breaker threshold and window")
	}
}

// SetConfig replaces the enforcement tuning. Panics after the first
// Launch: the ladder must not move under live sessions.
func (m *Manager) SetConfig(cfg Config) {
	if m.started {
		panic("sandbox: SetConfig after Launch")
	}
	validate(cfg)
	m.cfg = cfg
}

// Config returns the active enforcement tuning.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns the aggregate enforcement tally.
func (m *Manager) Stats() Stats { return m.stats }

// Sessions lists all sessions in admission order.
func (m *Manager) Sessions() []*Session { return m.sessions }

// Headroom reports the unreserved admittable power.
func (m *Manager) Headroom() power.Watts { return m.cfg.CapacityW - m.reserved }

// Launch admits and starts a session. The first Launch arms the budget
// monitor. Rejections are typed *AdmissionError.
func (m *Manager) Launch(spec Spec) (*Session, error) {
	if spec.Name == "" {
		panic("sandbox: session needs a name")
	}
	if spec.Start == nil {
		panic("sandbox: session needs a start function")
	}
	if spec.BudgetW <= 0 {
		panic("sandbox: session needs a positive budget")
	}
	if len(spec.Scopes) == 0 {
		spec.Scopes = []core.HW{core.HWCPU}
	}
	for _, s := range m.sessions {
		if s.spec.Name == spec.Name && !terminal(s.state) {
			m.stats.Rejected++
			m.bus.Instant(obs.CatSession, "reject", 0, int64(m.stats.Rejected), "", spec.Name)
			return nil, &AdmissionError{Name: spec.Name, Budget: spec.BudgetW,
				Headroom: m.Headroom(), Reason: "name already live"}
		}
	}
	if spec.BudgetW > m.Headroom() {
		m.stats.Rejected++
		m.bus.Instant(obs.CatSession, "reject", 0, int64(m.stats.Rejected), "", spec.Name)
		m.bus.Count("session.rejected", 0, "", 1)
		return nil, &AdmissionError{Name: spec.Name, Budget: spec.BudgetW,
			Headroom: m.Headroom(), Reason: "budget exceeds headroom"}
	}
	if !m.started {
		m.started = true
		m.lastWindow = m.eng.Now()
		m.monitorArm = m.eng.After(m.cfg.Window, m.tick)
	}
	s := &Session{spec: spec, state: StateRunning, spanStart: m.eng.Now()}
	m.sessions = append(m.sessions, s)
	m.reserved += spec.BudgetW
	m.stats.Admitted++
	m.start(s)
	m.bus.Instant(obs.CatSession, "admit", s.app.ID, int64(m.stats.Admitted), "", spec.Name)
	m.bus.Count("session.admitted", 0, "", 1)
	return s, nil
}

func terminal(st State) bool { return st == StateQuarantined || st == StateRetired }

// start brings up a (new) incarnation of s: a fresh app seeded with the
// preserved counters, a fresh sandbox, and the spec's program.
func (m *Manager) start(s *Session) {
	s.app = m.k.NewApp(s.spec.Name)
	if len(s.preserved) > 0 {
		// Sorted for determinism: counter restore order must not depend on
		// map iteration.
		keys := make([]string, 0, len(s.preserved))
		for k := range s.preserved {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s.app.SetCounter(k, s.preserved[k])
		}
	}
	s.box = m.boxes.MustCreate(s.app, s.spec.Scopes...)
	s.box.Enter()
	s.spec.Start(s.app)
	s.state = StateRunning
	s.throttled = false
	s.violations = 0
	s.spanStart = m.eng.Now()
}

// tick is the budget monitor: evaluate the elapsed window's blame shares
// against each live session's (duty-scaled) budget, advance the
// enforcement ladder, pace throttle duty cycles, and re-arm.
func (m *Manager) tick(now sim.Time) {
	from := m.lastWindow
	m.lastWindow = now
	winSec := float64(now.Sub(from)) / 1e9
	shares := make([]map[int]power.Joules, len(m.accts))
	for i, a := range m.accts {
		shares[i] = a.Shares(from, now)
	}
	for _, s := range m.sessions {
		switch s.state {
		case StateRunning, StateThrottled:
		default:
			continue
		}
		if !s.app.Alive() {
			//psbox:allow-unbilledenergy teardown is not a metering event; the next tick's Shares call bills the closed window
			m.retire(s)
			continue
		}
		if s.spec.MaxBacklog > 0 && m.backlog(s.app.ID) > s.spec.MaxBacklog {
			//psbox:allow-unbilledenergy teardown is not a metering event; the next tick's Shares call bills the closed window
			m.kill(s, "leak")
			continue
		}
		var e power.Joules
		for _, sh := range shares {
			e += sh[s.app.ID]
		}
		budgetJ := s.spec.BudgetW * winSec
		limitJ := budgetJ
		if s.throttled {
			// Held against the duty-scaled budget: a throttled hog still
			// saturates its open slice and keeps violating; an app that
			// reformed drops below and recovers.
			limitJ *= m.cfg.ThrottleDuty
			if reclaimed := s.peakJ - e; reclaimed > 0 {
				m.stats.ReclaimedJ += reclaimed
			}
		}
		if e > limitJ {
			s.violations++
			m.bus.Instant(obs.CatSession, "violation", s.app.ID, int64(s.violations), "", s.spec.Name)
			m.bus.Count("session.violations", s.app.ID, "", 1)
		} else {
			s.violations = 0
			if s.throttled {
				m.unthrottle(s)
			}
		}
		if !s.throttled && s.violations >= m.cfg.ThrottleAfter {
			s.peakJ = e
			m.throttle(s)
		} else if s.throttled && s.violations >= m.cfg.KillAfter {
			//psbox:allow-unbilledenergy teardown is not a metering event; the next tick's Shares call bills the closed window
			m.kill(s, "budget")
			continue
		}
		if s.throttled {
			m.pulseGate(s)
		}
	}
	m.monitorArm = m.eng.After(m.cfg.Window, m.tick)
}

// backlog sums the app's backlog across every attached accelerator.
func (m *Manager) backlog(appID int) int {
	total := 0
	for _, name := range m.k.AccelNames() {
		total += m.k.Accel(name).Backlog(appID)
	}
	return total
}

// throttle enters the duty-cycled state: the session's CPU gate is closed
// for 1-duty of every window from here on.
func (m *Manager) throttle(s *Session) {
	m.bus.Span(obs.CatSession, "run", s.app.ID, 0, "", s.spec.Name, s.spanStart)
	s.state = StateThrottled
	s.throttled = true
	s.violations = 0
	s.spanStart = m.eng.Now()
	s.throttles++
	m.stats.Throttles++
	m.bus.Instant(obs.CatSession, "throttle", s.app.ID, int64(s.throttles), "", s.spec.Name)
	m.bus.Count("session.throttles", s.app.ID, "", 1)
	m.pulseGate(s)
}

// pulseGate opens the session's gate for the duty fraction of the window
// starting now, closing it for the remainder.
func (m *Manager) pulseGate(s *Session) {
	sch := m.k.Scheduler()
	sch.SetAppGate(s.app.ID, true)
	if s.gateArm != (sim.Handle{}) {
		m.eng.Cancel(s.gateArm)
	}
	openFor := sim.Duration(float64(m.cfg.Window) * m.cfg.ThrottleDuty)
	appID := s.app.ID
	s.gateArm = m.eng.After(openFor, func(sim.Time) {
		s.gateArm = sim.Handle{}
		sch.SetAppGate(appID, false)
	})
}

// unthrottle returns a reformed session to full speed.
func (m *Manager) unthrottle(s *Session) {
	m.bus.Span(obs.CatSession, "throttle", s.app.ID, 0, "", s.spec.Name, s.spanStart)
	s.state = StateRunning
	s.throttled = false
	s.spanStart = m.eng.Now()
	if s.gateArm != (sim.Handle{}) {
		m.eng.Cancel(s.gateArm)
		s.gateArm = sim.Handle{}
	}
	m.k.Scheduler().SetAppGate(s.app.ID, true)
}

// kill terminates the session's current incarnation and hands it to the
// supervisor: restart after backoff, or quarantine when the circuit
// breaker trips.
func (m *Manager) kill(s *Session, reason string) {
	now := m.eng.Now()
	span := "run"
	if s.throttled {
		span = "throttle"
	}
	m.bus.Span(obs.CatSession, span, s.app.ID, 0, "", s.spec.Name, s.spanStart)
	if s.gateArm != (sim.Handle{}) {
		m.eng.Cancel(s.gateArm)
		s.gateArm = sim.Handle{}
	}
	if s.spec.PreserveData {
		s.preserved = s.app.Counters()
	}
	for _, t := range s.app.Tasks() {
		m.k.Kill(t)
	}
	m.k.Scheduler().SetAppGate(s.app.ID, true)
	s.box.Leave()
	s.state = StateKilled
	s.throttled = false
	s.spanStart = now
	s.kills++
	m.stats.Kills++
	m.bus.Instant(obs.CatSession, "kill", s.app.ID, int64(s.kills), "", reason)
	m.bus.Count("session.kills", s.app.ID, "", 1)

	// Circuit breaker: prune failures outside the window, record this one.
	kept := s.failures[:0]
	for _, at := range s.failures {
		if now.Sub(at) < m.cfg.BreakerWindow {
			kept = append(kept, at)
		}
	}
	s.failures = append(kept, now)
	if len(s.failures) >= m.cfg.BreakerN {
		m.quarantine(s)
		return
	}
	backoff := m.cfg.BackoffBase
	for i := 1; i < len(s.failures) && backoff < m.cfg.BackoffCap; i++ {
		backoff *= 2
	}
	if backoff > m.cfg.BackoffCap {
		backoff = m.cfg.BackoffCap
	}
	s.restartArm = m.eng.After(backoff, func(sim.Time) {
		s.restartArm = sim.Handle{}
		m.restart(s)
	})
}

// restart brings up the next incarnation.
func (m *Manager) restart(s *Session) {
	m.bus.Span(obs.CatSession, "killed", s.app.ID, 0, "", s.spec.Name, s.spanStart)
	m.start(s)
	s.restarts++
	m.stats.Restarts++
	m.bus.Instant(obs.CatSession, "restart", s.app.ID, int64(s.restarts), "", s.spec.Name)
	m.bus.Count("session.restarts", s.app.ID, "", 1)
}

// quarantine is the breaker's terminal verdict: no more restarts, budget
// released.
func (m *Manager) quarantine(s *Session) {
	s.state = StateQuarantined
	s.spanStart = m.eng.Now()
	m.reserved -= s.spec.BudgetW
	m.stats.Quarantined++
	m.bus.Instant(obs.CatSession, "quarantine", s.app.ID, int64(len(s.failures)), "", s.spec.Name)
	m.bus.Count("session.quarantines", s.app.ID, "", 1)
}

// retire finishes a session whose app exited on its own.
func (m *Manager) retire(s *Session) {
	span := "run"
	if s.throttled {
		span = "throttle"
	}
	m.bus.Span(obs.CatSession, span, s.app.ID, 0, "", s.spec.Name, s.spanStart)
	if s.gateArm != (sim.Handle{}) {
		m.eng.Cancel(s.gateArm)
		s.gateArm = sim.Handle{}
	}
	m.k.Scheduler().SetAppGate(s.app.ID, true)
	s.box.Leave()
	s.state = StateRetired
	s.throttled = false
	s.spanStart = m.eng.Now()
	m.reserved -= s.spec.BudgetW
	m.stats.Retired++
	m.bus.Instant(obs.CatSession, "retire", s.app.ID, int64(m.stats.Retired), "", s.spec.Name)
	m.bus.Count("session.retired", s.app.ID, "", 1)
}

// InjectCrash kills the named live session (the faults layer's sandbox
// crash). Reports whether a live session carried the name.
func (m *Manager) InjectCrash(name string) bool {
	for _, s := range m.sessions {
		if s.spec.Name != name {
			continue
		}
		switch s.state {
		case StateRunning, StateThrottled:
			m.kill(s, "crash")
			return true
		}
	}
	return false
}
