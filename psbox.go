// Package psbox is a from-scratch reproduction of "Power Sandbox: Power
// Awareness Redefined" (EuroSys 2018) as a deterministic full-stack
// simulation: embedded hardware models (multicore CPU with cluster DVFS, a
// pipelined GPU, a multicore DSP, a WiFi NIC with tail power states), an
// in-situ power meter, a work-conserving kernel — and, on top, the power
// sandbox (psbox) OS principal with spatial/temporal resource balloons,
// scheduling loans, and per-sandbox power-state virtualization.
//
// Quick start:
//
//	sys := psbox.NewAM57(42)
//	app := sys.Kernel.NewApp("vision")
//	app.Spawn("worker", 0, psbox.Loop(
//		psbox.Compute{Cycles: 3e6},
//		psbox.Sleep{D: 5 * psbox.Millisecond},
//	))
//	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
//	box.Enter()
//	sys.Run(1 * psbox.Second)
//	fmt.Printf("observed %.1f mJ\n", box.Read()*1000)
//
// Everything is simulated time; Run advances the world deterministically.
package psbox

import (
	"fmt"
	"sort"
	"strings"

	"psbox/internal/account"
	"psbox/internal/core"
	"psbox/internal/faults"
	"psbox/internal/hw/accelhw"
	"psbox/internal/hw/cpu"
	"psbox/internal/hw/display"
	"psbox/internal/hw/dram"
	"psbox/internal/hw/gps"
	"psbox/internal/hw/nic"
	"psbox/internal/hw/power"
	"psbox/internal/kernel"
	"psbox/internal/kernel/accel"
	"psbox/internal/kernel/netsched"
	"psbox/internal/kernel/sched"
	"psbox/internal/meter"
	"psbox/internal/obs"
	"psbox/internal/obs/profile"
	"psbox/internal/sandbox"
	"psbox/internal/sim"
)

// Re-exported simulation time types and units.
type (
	// Time is a simulated instant (nanoseconds since simulation start).
	Time = sim.Time
	// Duration is a simulated time span.
	Duration = sim.Duration
)

// Common duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Re-exported psbox API types (Listing 1 of the paper).
type (
	// Box is a power sandbox.
	Box = core.Box
	// HW names a bindable hardware metering scope.
	HW = core.HW
	// Sample is one timestamped power reading from a virtual power meter.
	Sample = power.Sample
	// App is an application principal.
	App = kernel.App
	// Task is an application thread.
	Task = kernel.Task
	// Env is the execution environment handed to programs.
	Env = kernel.Env
	// Program drives a task.
	Program = kernel.Program
	// ProgramFunc adapts a function to Program.
	ProgramFunc = kernel.ProgramFunc
	// Action is one step of a program.
	Action = kernel.Action
)

// Hardware scopes of the simulated platforms.
const (
	HWCPU     = core.HWCPU
	HWGPU     = core.HWGPU
	HWDSP     = core.HWDSP
	HWWiFi    = core.HWWiFi
	HWDisplay = core.HWDisplay
	HWGPS     = core.HWGPS
	HWDRAM    = core.HWDRAM
)

// Re-exported program actions.
type (
	// Compute consumes CPU cycles.
	Compute = kernel.Compute
	// SubmitAccel enqueues an accelerator command asynchronously.
	SubmitAccel = kernel.SubmitAccel
	// SubmitAccelAs delegates a command to another app's identity (for
	// psbox-aware userspace daemons, §7).
	SubmitAccelAs = kernel.SubmitAccelAs
	// AwaitAccel blocks on the app's accelerator backlog.
	AwaitAccel = kernel.AwaitAccel
	// Send deposits bytes into a socket buffer.
	Send = kernel.Send
	// SetTxLevel programs the app's NIC transmission power level.
	SetTxLevel = kernel.SetTxLevel
	// SetDisplayRegion updates what the app shows on the panel.
	SetDisplayRegion = kernel.SetDisplayRegion
	// AcquireGPS opens the GPS receiver for the app.
	AcquireGPS = kernel.AcquireGPS
	// ReleaseGPS drops the app's hold on the receiver.
	ReleaseGPS = kernel.ReleaseGPS
	// AwaitNet blocks on the app's unsent bytes.
	AwaitNet = kernel.AwaitNet
	// Sleep blocks for a duration.
	Sleep = kernel.Sleep
	// Exit terminates the task.
	Exit = kernel.Exit
)

// Loop repeats a fixed slice of actions forever.
func Loop(actions ...kernel.Action) Program { return kernel.Loop(actions...) }

// Sequence runs actions once, then exits.
func Sequence(actions ...kernel.Action) Program { return kernel.Sequence(actions...) }

// PlatformConfig assembles a simulated platform.
type PlatformConfig struct {
	CPU     cpu.Config
	GPU     *accelhw.Config // nil: absent
	DSP     *accelhw.Config // nil: absent
	WiFi    *nic.Config     // nil: absent
	Net     netsched.Config
	Display *display.Config // nil: absent (§7 extension scope)
	GPS     *gps.Config     // nil: absent (§7 extension scope)
	DRAM    *dram.Config    // nil: absent (§7 extension scope)

	// MeterPeriod is the DAQ sampling interval (default 10 µs = 100 kHz,
	// the paper's prototypes).
	MeterPeriod sim.Duration
	Seed        uint64

	// Sched overrides the CPU scheduler configuration (nil: defaults for
	// the CPU's core count). The ablation studies use it.
	Sched *sched.Config
}

// AM57Config models the paper's Fig. 4(a) platform: TI AM57x EVM with a
// dual Cortex-A15 cluster, PowerVR SGX544 GPU and TI C66x DSP, each on its
// own metered power rail.
func AM57Config(seed uint64) PlatformConfig {
	g := accelhw.GPUConfig()
	d := accelhw.DSPConfig()
	return PlatformConfig{
		CPU:  cpu.DefaultConfig(),
		GPU:  &g,
		DSP:  &d,
		Seed: seed,
	}
}

// BeagleBoneConfig models the paper's Fig. 4(b) platform: BeagleBone Black
// (single Cortex-A8) with a TI WiLink8 WiFi module.
func BeagleBoneConfig(seed uint64) PlatformConfig {
	c := cpu.Config{
		Name:           "cpu",
		Cores:          1,
		FreqsMHz:       []float64{300, 600, 1000},
		ActiveW:        []power.Watts{0.20, 0.35, 0.60},
		IdleCoreW:      0.05,
		RailBaseW:      0.25,
		GovernorWindow: 20 * sim.Millisecond,
		UpThreshold:    0.80,
		DownThreshold:  0.30,
	}
	w := nic.DefaultConfig()
	return PlatformConfig{
		CPU:  c,
		WiFi: &w,
		Net:  netsched.DefaultConfig(),
		Seed: seed,
	}
}

// System is an assembled platform: hardware, kernel, meter, psbox service,
// and the usage recorders that feed the baseline accounting comparator.
// A System is owned by one goroutine at a time; hand it to a worker by
// capture or channel send, never share it.
//
//psbox:confined
type System struct {
	Eng     *sim.Engine
	Kernel  *kernel.Kernel
	Meter   *meter.Meter
	Sandbox *core.Manager

	// Faults schedules deterministic hardware failures (accelerator hangs,
	// link flaps, DVFS stalls, meter dropouts) on this system's engine.
	Faults *faults.Injector

	// Invariants audits runtime invariants (energy conservation, balloon
	// exclusivity, non-negative backlogs, monotone observations) after
	// every Run; a violation panics.
	Invariants *core.Checker

	// Recorders holds per-rail hardware-usage recorders ("cpu", "gpu",
	// "dsp", "wifi") for the baseline accounting of §6.1.
	Recorders map[string]*account.Recorder

	// Trace is the observability bus: every subsystem emits its spans and
	// instants here once EnableTracing arms it. Disabled (and free) by
	// default.
	Trace *obs.Bus

	// Profile is the sim-time energy profiler: FoldProfile folds meter
	// samples against trace spans into a weighted app → component → rail
	// tree (see internal/obs/profile). Disabled (and free) by default;
	// arm with EnableProfiling.
	Profile *profile.Profiler

	// Periodic invariant auditing (SetAuditEvery) and scenario-registered
	// checkpoint sections (RegisterSnapshotter).
	auditStop  func()
	audits     uint64
	extraSnaps []extraSnap

	// sandboxes is the lazily-built session manager (Sandboxes); nil until
	// first requested, so scenarios that never use it keep their exact
	// event sequences and checkpoint bytes.
	sandboxes *sandbox.Manager
}

// NewSystem assembles a platform from a config.
// simProbeStride is how many fired engine events separate two CatSim
// "fired" heartbeat instants on the trace. Milestones are counted in
// fired events, not Run calls, so a straight run and a crash-resumed
// run of the same scenario produce byte-identical traces.
const simProbeStride = 4096

func NewSystem(cfg PlatformConfig) *System {
	eng := sim.NewEngine()
	bus := obs.NewBus(eng, 0)
	eng.SetFiredProbe(simProbeStride, func(now sim.Time, fired uint64) {
		bus.Instant(obs.CatSim, "fired", 0, int64(fired), "", "")
	})
	c := cpu.MustNew(eng, cfg.CPU)
	c.SetBus(bus)
	schedCfg := sched.DefaultConfig(cfg.CPU.Cores)
	if cfg.Sched != nil {
		schedCfg = *cfg.Sched
	}
	k := kernel.New(eng, kernel.Config{CPU: c, Sched: schedCfg, Seed: cfg.Seed})
	k.SetBus(bus)
	k.Scheduler().SetBus(bus, cfg.CPU.Name)
	m := meter.New(eng, cfg.MeterPeriod)
	m.SetBus(bus)
	m.AddRail(c.Rail())

	inj := faults.New(eng, cfg.Seed)
	inj.SetBus(bus)
	inj.RegisterCPU(cfg.CPU.Name, c)
	inj.RegisterMeter(m)

	recorders := map[string]*account.Recorder{"cpu": {}}
	k.SetCPUUsageRecorder(func(owner, _ int, start, end sim.Time) {
		recorders["cpu"].Record(owner, start, end)
	})

	attach := func(name string, hw *accelhw.Config) {
		if hw == nil {
			return
		}
		dev := accelhw.MustNew(eng, *hw)
		inj.RegisterAccel(name, dev)
		rec := &account.Recorder{}
		recorders[name] = rec
		drv := accel.New(eng, dev, accel.Callbacks{
			Usage: func(owner int, s, e sim.Time) { rec.Record(owner, s, e) },
		})
		drv.SetBus(bus)
		k.AttachAccel(name, drv)
		m.AddRail(dev.Rail())
	}
	attach("gpu", cfg.GPU)
	attach("dsp", cfg.DSP)

	if cfg.Display != nil {
		d := display.MustNew(eng, *cfg.Display)
		k.AttachDisplay(d)
		m.AddRail(d.Rail())
	}
	if cfg.GPS != nil {
		g := gps.MustNew(eng, *cfg.GPS)
		k.AttachGPS(g)
		m.AddRail(g.Rail())
	}
	if cfg.DRAM != nil {
		d := dram.MustNew(eng, *cfg.DRAM, cfg.CPU.Cores)
		k.AttachDRAM(d)
		m.AddRail(d.Rail())
	}
	if cfg.WiFi != nil {
		n := nic.MustNew(eng, *cfg.WiFi)
		n.SetBus(bus)
		inj.RegisterNIC("wifi", n)
		rec := &account.Recorder{}
		recorders["wifi"] = rec
		netCfg := cfg.Net
		if netCfg.DrainSettle == 0 {
			netCfg = netsched.DefaultConfig()
		}
		nd := netsched.NewWithConfig(eng, netCfg, n, netsched.Callbacks{
			Usage: func(owner int, s, e sim.Time) { rec.Record(owner, s, e) },
		})
		nd.SetBus(bus)
		k.AttachNet(nd)
		m.AddRail(n.Rail())
	}

	// The battery rail: the whole-platform view an end-to-end power meter
	// (or a fuel gauge) would expose — the exact sum of every component
	// rail.
	var components []*power.Rail
	for _, name := range m.Rails() {
		components = append(components, m.Rail(name))
	}
	m.AddRail(power.SumRail(eng, "battery", components...))

	sandbox := core.NewManager(k, m)
	sandbox.SetBus(bus)
	return &System{
		Eng:        eng,
		Kernel:     k,
		Meter:      m,
		Sandbox:    sandbox,
		Faults:     inj,
		Invariants: core.NewChecker(sandbox, "battery"),
		Recorders:  recorders,
		Trace:      bus,
		Profile:    profile.New(),
	}
}

// NewAM57 builds the Fig. 4(a) platform.
func NewAM57(seed uint64) *System { return NewSystem(AM57Config(seed)) }

// NewBeagleBone builds the Fig. 4(b) platform.
func NewBeagleBone(seed uint64) *System { return NewSystem(BeagleBoneConfig(seed)) }

// Nexus6Config models the paper's second GPU platform (§5): a quad-core
// phone SoC with the Qualcomm Adreno 420. The wider cluster exercises
// task shootdown across four cores.
func Nexus6Config(seed uint64) PlatformConfig {
	c := cpu.Config{
		Name:           "cpu",
		Cores:          4,
		FreqsMHz:       []float64{300, 880, 1500, 2700},
		ActiveW:        []power.Watts{0.18, 0.45, 0.95, 2.40},
		IdleCoreW:      0.06,
		RailBaseW:      0.55,
		GovernorWindow: 20 * sim.Millisecond,
		UpThreshold:    0.80,
		DownThreshold:  0.30,
	}
	g := accelhw.AdrenoConfig()
	return PlatformConfig{
		CPU:  c,
		GPU:  &g,
		Seed: seed,
	}
}

// NewNexus6 builds the second GPU platform.
func NewNexus6(seed uint64) *System { return NewSystem(Nexus6Config(seed)) }

// MobileConfig models a phone-class device for the §7 extension scopes:
// the AM57-style compute complex plus an OLED display, a GPS receiver, and
// a WiFi module.
func MobileConfig(seed uint64) PlatformConfig {
	cfg := AM57Config(seed)
	d := display.DefaultConfig()
	g := gps.DefaultConfig()
	w := nic.DefaultConfig()
	mem := dram.DefaultConfig()
	cfg.Display = &d
	cfg.GPS = &g
	cfg.WiFi = &w
	cfg.DRAM = &mem
	cfg.Net = netsched.DefaultConfig()
	return cfg
}

// NewMobile builds the §7 extension platform.
func NewMobile(seed uint64) *System { return NewSystem(MobileConfig(seed)) }

// Run advances simulated time by d, then audits the runtime invariants
// over the advanced window; a violation panics. Every test that drives a
// system through Run therefore doubles as an invariant audit.
func (s *System) Run(d Duration) {
	s.Eng.RunFor(d)
	if s.Invariants != nil {
		if v := s.Invariants.Check(); len(v) > 0 {
			panic("psbox: invariant violation:\n  " + strings.Join(v, "\n  "))
		}
	}
}

// WatchdogConfig tunes the kernel accelerator watchdogs.
type WatchdogConfig = accel.WatchdogConfig

// DefaultWatchdogConfig returns the standard watchdog tuning.
func DefaultWatchdogConfig() WatchdogConfig { return accel.DefaultWatchdogConfig() }

// EnableAccelWatchdogs arms the completion-deadline watchdog on every
// attached accelerator: wedged devices are reset and their orphaned
// commands resubmitted with capped exponential backoff, the wasted
// occupancy billed to the owning sandbox.
func (s *System) EnableAccelWatchdogs(cfg WatchdogConfig) {
	s.Kernel.EnableAccelWatchdogs(cfg)
}

// Now reports the current simulated time.
func (s *System) Now() Time { return s.Eng.Now() }

// EnableTracing arms the observability bus: from this point on every
// instrumented subsystem records its spans and instants (and metric
// updates) on s.Trace. Tracing costs nothing while off — emission sites
// are nil-safe no-ops.
func (s *System) EnableTracing() { s.Trace.Enable() }

// EnableProfiling arms the energy profiler (and the trace bus it reads
// from): FoldProfile calls from this point on accumulate the weighted
// energy tree. Profiling costs nothing while off.
func (s *System) EnableProfiling() {
	s.Trace.Enable()
	s.Profile.Enable()
}

// FoldProfile folds every metered rail's unprocessed sample windows —
// from the profiler's watermark up to now — against the trace's activity
// spans, then advances the watermark. Call it whenever the profile should
// catch up (typically once at the end of a scenario, or per quantum in
// long runs); repeated calls never double-count. The battery rail is the
// sum of the others and is skipped, mirroring the blame report.
func (s *System) FoldProfile() {
	if !s.Profile.Enabled() {
		return
	}
	now := s.Now()
	from := s.Profile.Through()
	events := s.Trace.Events()
	ownerName := func(id int) string {
		if id == 0 {
			return "kernel"
		}
		if name := s.Trace.OwnerName(id); name != "" {
			return name
		}
		return fmt.Sprintf("app%d", id)
	}
	for _, rail := range s.Meter.Rails() {
		if rail == "battery" {
			continue
		}
		samples := s.Meter.Samples(rail, from, now)
		var gaps []obs.Gap
		for _, w := range s.Meter.Dropouts(rail, from, now) {
			gaps = append(gaps, obs.Gap{From: w.From, To: w.To})
		}
		s.Profile.FoldRail(rail, samples, s.Meter.Period(), events, gaps, ownerName)
	}
	s.Profile.Advance(now)
}

// Blame joins one rail's DAQ samples with the trace's activity spans into
// the per-sample attribution timeline of the canonical report: for every
// sample window, which principals the drawn power is blamed on. Dropout
// windows injected on the rail mark overlapping samples degraded.
// Tracing must have been enabled before the window of interest, or the
// spans (and thus the blame) are empty.
func (s *System) Blame(rail string, from, to Time) []obs.Blame {
	samples := s.Meter.Samples(rail, from, to)
	var gaps []obs.Gap
	for _, w := range s.Meter.Dropouts(rail, from, to) {
		gaps = append(gaps, obs.Gap{From: w.From, To: w.To})
	}
	intervals := obs.IntervalsFromEvents(s.Trace.Events(), rail)
	return obs.Attribute(samples, s.Meter.Period(), intervals, gaps)
}

// Sandboxes returns the system's runtime session manager, building it on
// first use: every metered-usage rail feeds a usage-share blame
// accountant, and the manager enforces per-session power budgets over
// their summed attribution. The manager starts with DefaultConfig(10 W);
// tune via SetConfig before the first Launch. Also registers the manager
// as the fault layer's sandbox-crash target and as the "sandbox"
// checkpoint section.
func (s *System) Sandboxes() *sandbox.Manager {
	if s.sandboxes == nil {
		names := make([]string, 0, len(s.Recorders))
		for name := range s.Recorders {
			names = append(names, name)
		}
		sort.Strings(names)
		accts := make([]*account.Accountant, 0, len(names))
		for _, name := range names {
			accts = append(accts, s.Accountant(name, account.PolicyUsageShare))
		}
		s.sandboxes = sandbox.NewManager(s.Eng, s.Kernel, s.Sandbox, accts, s.Trace,
			sandbox.DefaultConfig(10))
		if s.Faults != nil {
			s.Faults.RegisterSandbox(s.sandboxes)
		}
	}
	return s.sandboxes
}

// Accountant builds the baseline comparator over one rail — the "existing
// approach" columns of Fig. 6.
func (s *System) Accountant(rail string, policy account.Policy) *account.Accountant {
	rec, ok := s.Recorders[rail]
	if !ok {
		panic("psbox: no usage recorder for rail " + rail)
	}
	return &account.Accountant{
		Rail:   s.Meter.Rail(rail),
		Rec:    rec,
		Window: s.Meter.Period(),
		Policy: policy,
	}
}
