// Side channel demo (§2.5): an attacker infers which website a victim
// browser renders from GPU power — until psbox becomes the only way to
// observe power.
//
//	go run ./examples/sidechannel
package main

import (
	"fmt"

	"psbox/internal/sidechannel"
	"psbox/internal/sim"
)

func main() {
	base := sidechannel.Config{
		Sites:  8,
		Trials: 2,
		Seed:   2026,
		Span:   1200 * sim.Millisecond,
		Bucket: 10 * sim.Millisecond,
		Window: 25,
	}

	fmt.Println("training the attacker on solo victim GPU power traces…")

	base.Observe = sidechannel.ObserveUnrestricted
	open := sidechannel.Run(base)
	fmt.Printf("\nstate of the art (power readings unprotected):\n")
	fmt.Printf("  attacker identifies the website %d/%d times (%.0f%%, random would be %.0f%%)\n",
		open.Correct, open.Total, open.SuccessRate*100, open.RandomGuess*100)

	base.Observe = sidechannel.ObservePSBox
	closed := sidechannel.Run(base)
	fmt.Printf("\npsbox as the only observation interface:\n")
	fmt.Printf("  attacker succeeds %d/%d times (%.0f%%)\n",
		closed.Correct, closed.Total, closed.SuccessRate*100)
	fmt.Println("\nthe attacker's sandbox shows its own camouflage workload plus idle")
	fmt.Println("power; the victim's rendering signature never reaches it.")
}
