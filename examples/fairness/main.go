// Fairness demo (Fig. 8): three identical vision apps share the CPU; one
// enters its power sandbox, and only that one pays for the insulation.
//
//	go run ./examples/fairness
package main

import (
	"fmt"

	psbox "psbox"
	"psbox/internal/workload"
)

func main() {
	sys := psbox.NewAM57(3)
	var apps [3]*psbox.App
	for i := range apps {
		apps[i] = workload.Install(sys.Kernel, workload.Calib3D(2, true))
	}

	measure := func(span psbox.Duration) [3]float64 {
		var before [3]float64
		for i, a := range apps {
			before[i] = a.Counter("kb")
		}
		sys.Run(span)
		var rate [3]float64
		for i, a := range apps {
			rate[i] = (a.Counter("kb") - before[i]) / span.Seconds()
		}
		return rate
	}

	sys.Run(300 * psbox.Millisecond) // warm up
	beforeRates := measure(2 * psbox.Second)

	box := sys.Sandbox.MustCreate(apps[2], psbox.HWCPU)
	box.Enter()
	afterRates := measure(2 * psbox.Second)

	fmt.Println("throughput (KB/s) of three identical calib3d instances:")
	fmt.Printf("%-12s %10s %10s %8s\n", "instance", "before", "after", "change")
	for i := range apps {
		mark := " "
		if i == 2 {
			mark = "*"
		}
		change := (afterRates[i]/beforeRates[i] - 1) * 100
		fmt.Printf("%-11s%s %10.1f %10.1f %+7.1f%%\n", apps[i].Name, mark, beforeRates[i], afterRates[i], change)
	}
	fmt.Println("\n(*) entered its power sandbox after the first window.")
	fmt.Printf("it observed %.1f mJ of insulated energy and paid the entire cost:\n", box.Read()*1000)
	fmt.Println("spatial balloons + scheduling loans confine the loss to the sandboxed app.")
}
