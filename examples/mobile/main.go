// Mobile extensions (§7): power sandboxes on the display, GPS, and DRAM
// scopes of a phone-class platform — scopes where insulation comes from
// exact attribution (OLED), the off/suspended hiding rule (GPS), or riding
// the CPU's spatial balloons (DRAM).
//
//	go run ./examples/mobile
package main

import (
	"fmt"

	psbox "psbox"
)

func main() {
	sys := psbox.NewMobile(99)

	// A navigation app: draws a map, holds the GPS, streams map tiles
	// through memory.
	nav := sys.Kernel.NewApp("nav")
	nav.Spawn("ui", 0, psbox.Sequence(
		psbox.Compute{Cycles: 2e5},
		psbox.SetDisplayRegion{Pixels: 600000, Luminance: 0.6},
		psbox.AcquireGPS{},
		psbox.Sleep{D: 120 * psbox.Second},
	))
	nav.Spawn("tiles", 1, psbox.Loop(
		psbox.Compute{Cycles: 2e6, MemGBs: 1.2},
		psbox.Sleep{D: 20 * psbox.Millisecond},
	))

	// A video app lighting up most of the panel and thrashing memory.
	video := sys.Kernel.NewApp("video")
	video.Spawn("play", 0, psbox.Loop(
		psbox.Compute{Cycles: 3e6, MemGBs: 3.5},
		psbox.Sleep{D: 10 * psbox.Millisecond},
	))
	video.Spawn("draw", 1, psbox.Sequence(
		psbox.Compute{Cycles: 1e5},
		psbox.SetDisplayRegion{Pixels: 1000000, Luminance: 0.9},
		psbox.Sleep{D: 120 * psbox.Second},
	))

	box := sys.Sandbox.MustCreate(nav, psbox.HWCPU, psbox.HWDRAM, psbox.HWDisplay, psbox.HWGPS)
	box.Enter()
	sys.Run(40 * psbox.Second) // past the GPS cold start (28 s)

	fmt.Println("nav's insulated power observation, by scope:")
	for _, h := range box.HW() {
		fmt.Printf("  %-8s %9.1f mJ\n", h, box.ReadScope(h)*1000)
	}
	fmt.Println()
	fmt.Printf("whole display rail: %7.1f mJ (video's big bright region dominates — nav never sees it)\n",
		sys.Meter.Energy("display", 0, sys.Now())*1000)
	fmt.Printf("whole DRAM rail:    %7.1f mJ (video's thrashing dominates — nav sees only its own stream)\n",
		sys.Meter.Energy("dram", 0, sys.Now())*1000)
	fmt.Printf("GPS state: %v, nav holds it: %v\n",
		sys.Kernel.GPS().State(), sys.Kernel.GPS().Holds(nav.ID))
	fmt.Println("\nper §7: OLED needs no balloons (additive pixels), GPS reveals operating")
	fmt.Println("power but hides off/suspended transitions, and DRAM rides the CPU balloon.")
}
