// Power events (§8.2): the psbox native interface wrapped under a
// sensor-style API — the app subscribes to "high power" and "power keeps
// increasing" events instead of polling samples.
//
//	go run ./examples/powerevents
package main

import (
	"fmt"

	psbox "psbox"
	"psbox/internal/powerapi"
)

func main() {
	sys := psbox.NewAM57(11)

	// A leaky app: every frame does a bit more work (think: a growing
	// cache being rescanned each iteration). Its duty cycle — and with it
	// its average power — creeps upward.
	app := sys.Kernel.NewApp("leaky")
	cycles := 8e5
	step := 0
	app.Spawn("t", 0, psbox.ProgramFunc(func(env *psbox.Env) psbox.Action {
		step++
		if step%2 == 1 {
			cycles *= 1.04
			return psbox.Compute{Cycles: cycles}
		}
		return psbox.Sleep{D: 10 * psbox.Millisecond}
	}))

	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	box.Enter()

	l := powerapi.NewListener(sys.Eng, box, psbox.HWCPU, 20*psbox.Millisecond)
	idle := sys.Kernel.CPU().IdlePower()
	highs := 0
	l.Subscribe(powerapi.Above(idle+1.0, 25*psbox.Millisecond), func(e powerapi.Event) {
		highs++
		if highs <= 3 {
			fmt.Printf("t=%5.2fs  HIGH POWER  %.2f W sustained >25ms\n", e.At.Seconds(), e.Value)
		}
	})
	l.Subscribe(powerapi.Rising(100*psbox.Millisecond, 4, 0.5), func(e powerapi.Event) {
		fmt.Printf("t=%5.2fs  RISING      %.2f W/s over the last 400 ms\n", e.At.Seconds(), e.Value)
	})
	l.Start()

	sys.Run(4 * psbox.Second)
	l.Stop()
	if highs > 3 {
		fmt.Printf("… plus %d more high-power events as the leak worsens\n", highs-3)
	}

	fmt.Printf("\nprocessed %d power samples without the app polling once —\n", l.Samples())
	fmt.Println("exactly how apps consume accelerometer events today (§8.2).")
}
