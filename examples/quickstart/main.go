// Quickstart: create a power sandbox around an app, observe its energy,
// and show that the observation is insulated from a co-runner.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	psbox "psbox"
)

func main() {
	// Build the simulated AM57x platform: dual-A15 CPU, GPU, DSP, each on
	// its own metered power rail, sampled at 100 kHz.
	sys := psbox.NewAM57(42)

	// A power-aware vision app: 3 M cycles of processing per frame, every
	// 10 ms.
	app := sys.Kernel.NewApp("vision")
	app.Spawn("worker", 0, psbox.Loop(
		psbox.Compute{Cycles: 3e6},
		psbox.Sleep{D: 10 * psbox.Millisecond},
	))

	// A noisy neighbour saturating both cores.
	noise := sys.Kernel.NewApp("noise")
	noise.Spawn("hog0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	noise.Spawn("hog1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))

	// Listing 1 of the paper: create a sandbox bound to the CPU rail,
	// enter it, observe, leave.
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	box.Enter()

	sys.Run(1 * psbox.Second)

	samples := box.Sample(psbox.HWCPU, 8)
	fmt.Println("first timestamped samples from the virtual power meter:")
	for _, s := range samples {
		fmt.Printf("  t=%v  %6.3f W\n", s.T, s.W)
	}

	energy := box.Read()
	box.Leave()

	railEnergy := sys.Meter.Energy("cpu", 0, sys.Now())
	fmt.Printf("\napp observed through psbox: %7.1f mJ\n", energy*1000)
	fmt.Printf("whole CPU rail (entangled): %7.1f mJ\n", railEnergy*1000)
	fmt.Println("\nthe sandbox saw only its own activity plus idle power —")
	fmt.Println("the noisy neighbour contributed nothing but idle periods.")
}
