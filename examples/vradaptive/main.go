// VR adaptive rendering (§6.4 / Fig. 9): the rendering task periodically
// observes its power through its sandbox and trades fidelity for power
// against a budget, undisturbed by the gesture task's varying load.
//
//	go run ./examples/vradaptive
package main

import (
	"fmt"

	psbox "psbox"
	"psbox/internal/workload"
)

func main() {
	const budgetMW = 400.0 // dynamic power budget for the renderer

	sys := psbox.NewAM57(7)
	vr := workload.NewVR(4) // start at ultra fidelity
	workload.Install(sys.Kernel, vr.GestureSpec(2))
	render := workload.Install(sys.Kernel, vr.RenderSpec(2))

	box := sys.Sandbox.MustCreate(render, psbox.HWCPU)
	box.Enter()
	idleW := sys.Kernel.CPU().IdlePower()

	// The adaptation loop: every 400 ms of simulated time, read the
	// sandbox's accumulated energy, convert to average dynamic power, and
	// step the fidelity ladder.
	window := 400 * psbox.Millisecond
	last := 0.0
	var control func(psbox.Time)
	control = func(now psbox.Time) {
		e := box.Read()
		dynMW := ((e-last)/window.Seconds() - idleW) * 1000
		last = e
		lvl := workload.VRFidelityLevels[vr.Fidelity()]
		fmt.Printf("t=%5.1fs  renderer %6.0f mW (budget %4.0f)  fidelity=%-7s contours=%d\n",
			now.Seconds(), dynMW, budgetMW, lvl.Name, vr.Contours())
		switch {
		case dynMW > budgetMW*1.05:
			vr.SetFidelity(vr.Fidelity() - 1)
		case dynMW < budgetMW*0.70:
			vr.SetFidelity(vr.Fidelity() + 1)
		}
		sys.Eng.After(window, control)
	}
	sys.Eng.After(window, control)

	sys.Run(5 * psbox.Second)

	fmt.Printf("\nconverged at fidelity %q; rendered %v frames, gesture processed %v\n",
		workload.VRFidelityLevels[vr.Fidelity()].Name,
		render.Counter("render_frames"),
		sys.Kernel.Apps()[0].Counter("gesture_frames"))
	fmt.Println("without psbox the gesture task's varying power would pollute the")
	fmt.Println("renderer's observations and destabilize this loop (§6.4).")
}
